#!/usr/bin/env bash
# Assert that every CTest label declared in CMakeLists.txt matches at
# least one discovered test. A label with zero tests is how a CI filter
# silently stops running a whole suite (the PR-5 label-collapse bug
# shipped exactly that way): the ASan/TSan presets select by label, so
# a renamed or dropped label turns a sanitizer gate into a no-op.
#
# Usage: scripts/check_labels.sh [build-dir]   (default: build)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

if [[ ! -f "$build_dir/CTestTestfile.cmake" ]]; then
  echo "error: '$build_dir' is not a configured build directory" >&2
  exit 2
fi

# Every label mentioned in a mamps_add_test(<name> <source> "<l1>;<l2>")
# call, plus the labels attached through plain add_test registrations
# (example smoke tests, the lint gate) which the sed above cannot see.
extra_labels="examples smoke lint"
labels=$( { sed -n 's/^[[:space:]]*mamps_add_test([^ ]* [^ ]* "\{0,1\}\([^")]*\)"\{0,1\})/\1/p' \
              "$repo_root/CMakeLists.txt" | tr ';' '\n'; \
            printf '%s\n' $extra_labels; } | sort -u)

if [[ -z "$labels" ]]; then
  echo "error: no mamps_add_test labels found in CMakeLists.txt" >&2
  exit 2
fi

status=0
for label in $labels; do
  count=$(ctest --test-dir "$build_dir" -N -L "^${label}$" 2>/dev/null |
          sed -n 's/^Total Tests: \([0-9]*\)$/\1/p')
  if [[ -z "${count:-}" || "$count" -eq 0 ]]; then
    echo "FAIL: label '$label' matches no tests (a label filter using it runs nothing)"
    status=1
  else
    echo "ok: label '$label' matches $count test(s)"
  fi
done
exit $status
