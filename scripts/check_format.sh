#!/usr/bin/env bash
# clang-format gate, scoped to avoid a mass reformat of historical
# code: it checks (1) every C++ file under tools/ and scripts/, and
# (2) the C++ files changed relative to a base ref (default: the merge
# base with origin/main, overridable with --base <ref>; --all widens to
# the whole tree). Exits nonzero with a diff summary when any checked
# file deviates from .clang-format.
#
# clang-format is an optional dependency: when the binary is missing
# (local dev containers ship only gcc) the gate reports SKIP and exits
# 0 — the CI lint job installs it, so the check cannot silently vanish
# from CI.
#
# Usage: scripts/check_format.sh [--base <ref>] [--all] [--fix]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

base=""
mode="scoped"
fix=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    --base) base="$2"; shift 2 ;;
    --all) mode="all"; shift ;;
    --fix) fix=1; shift ;;
    *) echo "usage: $0 [--base <ref>] [--all] [--fix]" >&2; exit 2 ;;
  esac
done

clang_format="${CLANG_FORMAT:-clang-format}"
if ! command -v "$clang_format" >/dev/null 2>&1; then
  echo "SKIP: $clang_format not found (install clang-format or set CLANG_FORMAT)"
  exit 0
fi

declare -a files=()
collect() {
  while IFS= read -r f; do
    [[ -f "$f" ]] || continue
    case "$f" in
      *.cpp|*.hpp|*.cc|*.h) files+=("$f") ;;
    esac
  done
}

if [[ "$mode" == "all" ]]; then
  collect < <(git ls-files 'src/**' 'tests/**' 'bench/**' 'examples/**' 'tools/**' 'scripts/**')
else
  # Always: the tooling trees (small, owned by this gate).
  collect < <(git ls-files 'tools/**' 'scripts/**')
  # Plus the files changed relative to the base ref, when resolvable.
  if [[ -z "$base" ]]; then
    base="$(git merge-base HEAD origin/main 2>/dev/null || true)"
  fi
  if [[ -n "$base" ]]; then
    collect < <(git diff --name-only --diff-filter=ACMR "$base" HEAD)
    collect < <(git diff --name-only --diff-filter=ACMR HEAD)
  fi
fi

if [[ ${#files[@]} -eq 0 ]]; then
  echo "ok: no C++ files in scope"
  exit 0
fi

# Dedupe (a changed tools/ file appears twice).
mapfile -t files < <(printf '%s\n' "${files[@]}" | sort -u)

if [[ "$fix" -eq 1 ]]; then
  "$clang_format" -i --style=file "${files[@]}"
  echo "ok: formatted ${#files[@]} file(s) in place"
  exit 0
fi

status=0
bad=0
for f in "${files[@]}"; do
  if ! "$clang_format" --style=file --dry-run -Werror "$f" >/dev/null 2>&1; then
    echo "FAIL: $f deviates from .clang-format (run: scripts/check_format.sh --fix)"
    status=1
    bad=$((bad + 1))
  fi
done
if [[ "$status" -eq 0 ]]; then
  echo "ok: ${#files[@]} file(s) match .clang-format"
else
  echo "FAIL: $bad of ${#files[@]} checked file(s) need formatting" >&2
fi
exit $status
