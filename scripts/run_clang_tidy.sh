#!/usr/bin/env bash
# clang-tidy over the library sources, driven by the repo .clang-tidy
# (WarningsAsErrors promotes every finding). Results are cached per
# translation unit under .cache/clang-tidy: the cache key is the SHA-256
# of the .clang-tidy config, the TU's own bytes, and a global hash over
# every header in src/ — any header edit invalidates everything (cheap
# and safe: correctness of the gate beats incremental precision). The
# CI lint job persists the cache directory across runs, so an untouched
# tree re-checks in seconds.
#
# clang-tidy is an optional dependency: when the binary is missing the
# gate reports SKIP and exits 0 (local dev containers ship only gcc);
# the CI lint job installs it.
#
# Usage: scripts/run_clang_tidy.sh [build-dir]   (default: build)
#   The build dir must contain compile_commands.json
#   (CMAKE_EXPORT_COMPILE_COMMANDS=ON — the ci preset sets it).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
cache_dir="$repo_root/.cache/clang-tidy"

clang_tidy="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$clang_tidy" >/dev/null 2>&1; then
  echo "SKIP: $clang_tidy not found (install clang-tidy or set CLANG_TIDY)"
  exit 0
fi
if [[ ! -f "$build_dir/compile_commands.json" ]]; then
  echo "error: $build_dir/compile_commands.json not found" >&2
  echo "       configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON (the ci preset does)" >&2
  exit 2
fi

hash_cmd="sha256sum"
command -v "$hash_cmd" >/dev/null 2>&1 || hash_cmd="shasum -a 256"

mkdir -p "$cache_dir"
cd "$repo_root"

# One global fingerprint over the config and every header: a header
# edit can change any TU's diagnostics, so it must invalidate them all.
global_hash=$( { cat .clang-tidy; git ls-files 'src/**/*.hpp' | sort | xargs cat; } |
               $hash_cmd | cut -d' ' -f1)

status=0
checked=0
cached=0
failed=0
while IFS= read -r tu; do
  key=$( { echo "$global_hash"; cat "$tu"; } | $hash_cmd | cut -d' ' -f1)
  stamp="$cache_dir/$key.ok"
  if [[ -f "$stamp" ]]; then
    cached=$((cached + 1))
    continue
  fi
  checked=$((checked + 1))
  if "$clang_tidy" -p "$build_dir" --quiet "$tu" > "$cache_dir/last_output.txt" 2>&1; then
    touch "$stamp"
  else
    echo "FAIL: clang-tidy findings in $tu"
    cat "$cache_dir/last_output.txt"
    status=1
    failed=$((failed + 1))
  fi
done < <(git ls-files 'src/**/*.cpp')

echo "clang-tidy: $checked checked, $cached cached-clean, $failed failed"
exit $status
