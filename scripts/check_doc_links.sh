#!/usr/bin/env bash
# Check that every relative markdown link in docs/*.md and README.md
# resolves to an existing file (anchors and external URLs are skipped).
# Used by the CI docs job; run locally from anywhere in the repo.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
status=0

check_file() {
  local md="$1"
  local dir
  dir="$(dirname "$md")"
  # Extract markdown link targets: [text](target)
  local targets
  targets="$(grep -oE '\]\([^)]+\)' "$md" | sed -E 's/^\]\(//; s/\)$//' || true)"
  while IFS= read -r target; do
    [ -z "$target" ] && continue
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    # Strip a trailing anchor.
    local path="${target%%#*}"
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ]; then
      echo "BROKEN LINK: $md -> $target" >&2
      status=1
    fi
  done <<< "$targets"
}

for md in "$repo_root"/docs/*.md "$repo_root"/README.md; do
  [ -e "$md" ] || continue
  check_file "$md"
done

if [ "$status" -ne 0 ]; then
  echo "Documentation link check failed." >&2
else
  echo "All documentation links resolve."
fi
exit "$status"
