#!/usr/bin/env bash
# Single entry point for every repo-specific static gate. Runs, in
# order:
#
#   1. mamps-lint self-test  — the golden fixtures (a dead check fails)
#   2. mamps-lint tree scan  — the five invariant checks over src/
#   3. check_labels          — every declared CTest label matches >= 1
#                              test (needs a configured build dir;
#                              skipped with a warning when absent)
#   4. check_doc_links       — docs/ markdown links resolve
#   5. check_format          — clang-format over tools/, scripts/, and
#                              PR-changed files (SKIP without the tool)
#   6. clang-tidy            — curated checks, cached per TU (SKIP
#                              without the tool)
#
# Every gate runs even after a failure; the summary table at the end
# lists each verdict and the exit code is nonzero when any gate failed.
#
# Usage: tools/lint/run.sh [--build-dir <dir>]   (default: build)
set -uo pipefail

repo_root="$(cd "$(dirname "$0")/../.." && pwd)"
build_dir="$repo_root/build"
while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir) build_dir="$2"; shift 2 ;;
    *) echo "usage: $0 [--build-dir <dir>]" >&2; exit 2 ;;
  esac
done

python="${PYTHON:-python3}"

declare -a names=() verdicts=()
overall=0

run_gate() {
  local name="$1"
  shift
  local out rc
  echo "==> $name"
  out=$("$@" 2>&1)
  rc=$?
  echo "$out"
  local verdict
  if [[ $rc -eq 0 ]]; then
    if grep -q '^SKIP' <<< "$out"; then verdict="SKIP"; else verdict="ok"; fi
  else
    verdict="FAIL"
    overall=1
  fi
  names+=("$name")
  verdicts+=("$verdict")
}

run_gate "mamps-lint --self-test" "$python" "$repo_root/tools/lint/mamps_lint.py" --self-test
run_gate "mamps-lint tree scan" "$python" "$repo_root/tools/lint/mamps_lint.py"

if [[ -f "$build_dir/CTestTestfile.cmake" ]]; then
  run_gate "check_labels" "$repo_root/scripts/check_labels.sh" "$build_dir"
else
  echo "==> check_labels"
  echo "SKIP: '$build_dir' is not a configured build dir (pass --build-dir)"
  names+=("check_labels")
  verdicts+=("SKIP")
fi

run_gate "check_doc_links" "$repo_root/scripts/check_doc_links.sh"
run_gate "check_format" "$repo_root/scripts/check_format.sh"
run_gate "clang-tidy" "$repo_root/scripts/run_clang_tidy.sh" "$build_dir"

echo
echo "---- lint summary ----"
for i in "${!names[@]}"; do
  printf '%-24s %s\n' "${names[$i]}" "${verdicts[$i]}"
done
exit $overall
