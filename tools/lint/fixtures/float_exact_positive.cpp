// lint-fixture-path: src/analysis/fixture_float.cpp
// Golden fixture: floating point in the exact-rational analysis core.
// A rounded bound is no longer conservative, and float results differ
// across compilers/FPUs — the guarantee contract is exact Rationals.
#include <cstdint>

namespace mamps::analysis {

double approximateThroughput(std::uint64_t completions, std::uint64_t period) {  // lint:expect(float-exact)
  return static_cast<float>(completions) / static_cast<float>(period);  // lint:expect(float-exact)
}

}  // namespace mamps::analysis
