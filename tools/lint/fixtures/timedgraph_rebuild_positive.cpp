// lint-fixture-path: src/mapping/fixture_rebuild.cpp
// Golden fixture: the PR-4 bug class, verbatim — rebuilding a
// TimedGraph by assigning fields one by one drops every annotation the
// assignment list does not mention (withCapacities lost maxConcurrent
// exactly this way). Both the aggregate-literal and the direct-mutation
// shapes must be flagged.
#include "sdf/graph.hpp"

namespace mamps::mapping {

sdf::TimedGraph rebuildByHand(const sdf::TimedGraph& timed, sdf::Graph transformed) {
  sdf::TimedGraph out{std::move(transformed), timed.execTime};  // lint:expect(timedgraph-rebuild)
  return out;  // maxConcurrent silently defaulted: pipelined stages serialize
}

void patchTiming(sdf::TimedGraph& timed) {
  timed.execTime.push_back(1);  // lint:expect(timedgraph-rebuild)
  timed.maxConcurrent = {};     // lint:expect(timedgraph-rebuild)
}

}  // namespace mamps::mapping
