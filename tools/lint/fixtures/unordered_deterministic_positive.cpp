// lint-fixture-path: src/analysis/fixture_unordered.cpp
// Golden fixture: an unordered container declared in a
// deterministic-results layer must be flagged. (Not compiled; the
// linter sees the pretend path above.)
#include <string>
#include <unordered_map>
#include <vector>

namespace mamps::analysis {

std::vector<std::string> orderedReport() {
  std::unordered_map<std::string, int> counts;  // lint:expect(unordered-deterministic)
  counts.try_emplace("a", 1);
  std::vector<std::string> out;
  for (const auto& [key, value] : counts) {  // iteration order escapes into the result
    out.push_back(key);
  }
  return out;
}

}  // namespace mamps::analysis
