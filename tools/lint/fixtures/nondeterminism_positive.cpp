// lint-fixture-path: src/mapping/fixture_nondet.cpp
// Golden fixture: every banned nondeterminism source in one file —
// hidden-state RNGs, entropy seeds, wall-clock inputs, pointer-keyed
// ordered containers, and pointer values formatted into strings.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <map>
#include <random>

namespace mamps::mapping {

struct Node {};

std::uint64_t chaos(const Node* node) {
  std::uint64_t h = static_cast<std::uint64_t>(std::rand());  // lint:expect(nondeterminism)
  std::random_device entropy;                                 // lint:expect(nondeterminism)
  std::mt19937 twister(entropy());                            // lint:expect(nondeterminism)
  h += twister() + static_cast<std::uint64_t>(time(nullptr));  // lint:expect(nondeterminism)
  std::map<const Node*, std::uint64_t> byAddress;              // lint:expect(nondeterminism)
  byAddress[node] = h;
  char key[32];
  std::snprintf(key, sizeof key, "%p", static_cast<const void*>(node));  // lint:expect(nondeterminism)
  return h;
}

}  // namespace mamps::mapping
