// lint-fixture-path: src/analysis/fixture_float_ok.cpp
// Golden fixture: the suppressed twin — a value that provably never
// reaches a guarantee (diagnostic output only) may stay floating point
// with a justified suppression. Note a comment mentioning double is
// not a finding: the linter scans code, not comments.
#include <cstdint>

namespace mamps::analysis {

struct Stats {
  // lint:allow(float-exact) -- diagnostic only: reported, never compared against a guarantee
  double meanSolveSeconds = 0.0;
  std::uint64_t solves = 0;
};

}  // namespace mamps::analysis
