// lint-fixture-path: src/platform/resource_budget.cpp
// Golden fixture: the suppressed twin — two clean shapes. A mutation
// that records its provenance in the same body passes without any
// suppression; a deliberately unclaimed mutation (the platform
// baseline) suppresses on its signature line with the reason.
#include <cstdint>
#include <map>
#include <vector>

namespace mamps::platform {

struct TileBudget {
  std::uint64_t loadCycles = 0;
};

struct ClientLedger {
  std::map<std::uint32_t, std::uint64_t> tiles;
};

class ResourceBudget {
 public:
  void commitTile(std::uint32_t tile, std::uint32_t client, std::uint64_t loadCycles);
  void commitBaseline(std::uint64_t loadCycles);

 private:
  std::vector<TileBudget> tiles_;
  std::map<std::uint32_t, ClientLedger> ledgers_;
};

void ResourceBudget::commitTile(std::uint32_t tile, std::uint32_t client,
                                std::uint64_t loadCycles) {
  tiles_[tile].loadCycles += loadCycles;
  ledgers_[client].tiles[tile] += loadCycles;  // provenance recorded: releasable
}

// lint:allow(budget-provenance) -- platform baseline: deliberately unclaimed, never released
void ResourceBudget::commitBaseline(std::uint64_t loadCycles) {
  for (std::size_t t = 0; t < tiles_.size(); ++t) {
    tiles_[t].loadCycles += loadCycles;
  }
}

}  // namespace mamps::platform
