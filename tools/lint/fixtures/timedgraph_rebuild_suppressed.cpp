// lint-fixture-path: src/mapping/fixture_rebuild_ok.cpp
// Golden fixture: the suppressed twin — an actor-set-changing
// transformation (the documented rebuildFrom exception) populates every
// annotation per emitted actor and says so in its justification.
#include "sdf/graph.hpp"

namespace mamps::mapping {

sdf::TimedGraph expandActors(const sdf::TimedGraph& timed) {
  // lint:allow(timedgraph-rebuild) -- actor set changes: every annotation populated per copy
  sdf::TimedGraph out{};
  for (sdf::ActorId a = 0; a < timed.graph.actorCount(); ++a) {
    // lint:allow(timedgraph-rebuild) -- actor set changes: every annotation populated per copy
    out.execTime.push_back(timed.execTime.at(a));
    // lint:allow(timedgraph-rebuild) -- actor set changes: every annotation populated per copy
    out.maxConcurrent.push_back(timed.concurrencyLimit(a));
  }
  return out;
}

}  // namespace mamps::mapping
