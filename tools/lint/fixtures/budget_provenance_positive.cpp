// lint-fixture-path: src/platform/resource_budget.cpp
// Golden fixture: the PR-6 leak class — a member function that mutates
// reservation state (tiles_, usedWires_, freeFslLinks_, nextFslIndex_)
// without recording per-client provenance in ledgers_. release() can
// never tear this down, so a departed client leaks the capacity
// forever. The finding lands on the function signature line.
#include <cstdint>
#include <vector>

namespace mamps::platform {

struct TileBudget {
  std::uint64_t loadCycles = 0;
};

class ResourceBudget {
 public:
  void commitTile(std::uint32_t tile, std::uint64_t loadCycles);

 private:
  std::vector<TileBudget> tiles_;
};

void ResourceBudget::commitTile(std::uint32_t tile, std::uint64_t loadCycles) {  // lint:expect(budget-provenance)
  tiles_[tile].loadCycles += loadCycles;  // no ledger entry: unreleasable
}

}  // namespace mamps::platform
