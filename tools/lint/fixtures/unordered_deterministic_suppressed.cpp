// lint-fixture-path: src/analysis/fixture_unordered_ok.cpp
// Golden fixture: the suppressed twin — a justified lint:allow on the
// declaration line silences the check, and the linter accepts the file.
#include <cstdint>
#include <unordered_map>

namespace mamps::analysis {

std::uint64_t lookupOnly(std::uint64_t key) {
  // lint:allow(unordered-deterministic) -- lookup-only memo: never iterated, only size()/find()
  std::unordered_map<std::uint64_t, std::uint64_t> memo;
  const auto it = memo.find(key);
  return it == memo.end() ? 0 : it->second;
}

}  // namespace mamps::analysis
