// lint-fixture-path: src/mapping/fixture_nondet_ok.cpp
// Golden fixture: the suppressed twin — a pointer formatted into a
// process-local cache key is acceptable when the key never leaves the
// process and the pointee's identity IS the cache contract; the
// justification says so.
#include <cstdio>
#include <string>

namespace mamps::mapping {

struct AppModel {};

std::string cacheKey(const AppModel* app) {
  char key[32];
  // lint:allow(nondeterminism) -- process-local cache key: never serialized, identity is the contract
  std::snprintf(key, sizeof key, "%p", static_cast<const void*>(app));
  return key;
}

}  // namespace mamps::mapping
