#!/usr/bin/env python3
"""mamps-lint: this repository's invariant linter.

Every check encodes a bug class this codebase has actually shipped (or
explicitly designs against); see docs/ARCHITECTURE.md "Correctness
tooling" for the check-by-check history. The linter is deliberately
dependency-free (python3 stdlib only) so it runs identically in CI, as
a CTest, and on a bare checkout.

Usage:
  tools/lint/mamps_lint.py                 lint the default roots (src/)
  tools/lint/mamps_lint.py PATH...         lint specific files/directories
  tools/lint/mamps_lint.py --self-test     run the golden-fixture suite
  tools/lint/mamps_lint.py --list-checks   print the check registry

Suppressions: a finding is silenced by a comment on the same line or
the line directly above it:

  // lint:allow(<check-id>) -- <non-empty justification>

A suppression without a justification is itself a finding: the whole
point is that every accepted hazard carries its proof in the source.

Fixtures (tools/lint/fixtures/) give every check one positive file the
linter MUST flag and one suppressed twin it MUST accept; --self-test
fails when a check matches nothing (the PR-5 zero-match-label lesson
applied to this tool) or fires where it should not.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass, field

REPO_ROOT = os.path.normpath(os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", ".."))
FIXTURE_DIR = os.path.join(REPO_ROOT, "tools", "lint", "fixtures")
DEFAULT_ROOTS = ["src"]
CXX_EXTENSIONS = (".cpp", ".hpp", ".cc", ".hh", ".h")

SUPPRESS_RE = re.compile(r"//\s*lint:allow\(([a-z0-9-]+)\)\s*(?:--\s*(\S.*))?$")
EXPECT_RE = re.compile(r"//\s*lint:expect\(([a-z0-9-]+)\)")
FIXTURE_PATH_RE = re.compile(r"//\s*lint-fixture-path:\s*(\S+)")


@dataclass
class Finding:
    path: str  # repo-relative path
    line: int  # 1-based
    check: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.check}] {self.message}"


@dataclass
class SourceFile:
    """One file plus the comment/string-stripped views the checks scan."""

    path: str  # effective repo-relative path (fixtures may override)
    raw: list[str] = field(default_factory=list)
    code: list[str] = field(default_factory=list)  # comments stripped, strings kept
    nostr: list[str] = field(default_factory=list)  # comments and strings stripped


def strip_comments(lines: list[str]) -> tuple[list[str], list[str]]:
    """Return (comments stripped, comments+strings stripped) views.

    A line-oriented state machine: tracks /* */ across lines, handles
    // comments and "..." / '...' literals with escapes. Raw string
    literals are not handled (none in this codebase; the linter would
    scan their contents, which is conservative).
    """
    code_lines: list[str] = []
    nostr_lines: list[str] = []
    in_block = False
    for line in lines:
        code: list[str] = []
        nostr: list[str] = []
        i = 0
        n = len(line)
        while i < n:
            if in_block:
                end = line.find("*/", i)
                if end == -1:
                    i = n
                else:
                    in_block = False
                    i = end + 2
                continue
            ch = line[i]
            two = line[i : i + 2]
            if two == "/*":
                in_block = True
                i += 2
                continue
            if two == "//":
                break
            if ch in "\"'":
                quote = ch
                literal = [ch]
                i += 1
                while i < n:
                    c = line[i]
                    literal.append(c)
                    if c == "\\" and i + 1 < n:
                        literal.append(line[i + 1])
                        i += 2
                        continue
                    i += 1
                    if c == quote:
                        break
                code.extend(literal)
                nostr.append(quote + quote)
                continue
            code.append(ch)
            nostr.append(ch)
            i += 1
        code_lines.append("".join(code))
        nostr_lines.append("".join(nostr))
    return code_lines, nostr_lines


# ----------------------------------------------------------------- checks


def in_dirs(path: str, *dirs: str) -> bool:
    return any(path.startswith(d.rstrip("/") + "/") for d in dirs)


def check_unordered_deterministic(src: SourceFile) -> list[Finding]:
    """Unordered containers in layers with a deterministic-results contract.

    analysis/ produces exact rationals and mapping/ produces mappings,
    cache keys, and logged orders that must be bit-identical across runs
    and thread counts. std::unordered_* iteration order is unspecified,
    so any unordered container here is a hazard: migrate to std::map or
    a sorted vector, or suppress with the proof that no iteration order
    can reach a result, a key, or an output.
    """
    if not in_dirs(src.path, "src/analysis", "src/mapping"):
        return []
    pattern = re.compile(r"std::unordered_(?:map|set|multimap|multiset)\s*<")
    out = []
    for i, line in enumerate(src.code, 1):
        if pattern.search(line):
            out.append(
                Finding(
                    src.path,
                    i,
                    "unordered-deterministic",
                    "unordered container in a deterministic-results layer; iteration order is "
                    "unspecified — use std::map / a sorted vector, or suppress with proof that "
                    "no iteration order escapes into results, keys, or output",
                )
            )
    return out


def check_timedgraph_rebuild(src: SourceFile) -> list[Finding]:
    """Field-by-field TimedGraph reconstruction outside rebuildFrom.

    The PR-4 bug class: analysis::withCapacities rebuilt a TimedGraph by
    assigning graph+execTime and silently dropped maxConcurrent,
    serializing pipelined comm stages in every binding-aware analysis.
    Graph rewrites that keep the actor set must go through
    TimedGraph::rebuildFrom (or copy the whole struct); transformations
    that change the actor set must suppress with the per-actor
    population argument.
    """
    if not src.path.startswith("src/") or src.path == "src/sdf/graph.hpp":
        return []
    aggregate = re.compile(r"\bTimedGraph\s*(?:\w+\s*)?\{")
    mutation = re.compile(
        r"\.(?:execTime|maxConcurrent)\s*(?:=[^=]|"
        r"\.\s*(?:push_back|emplace_back|assign|resize|clear|insert)\b)"
    )
    out = []
    for i, line in enumerate(src.code, 1):
        if aggregate.search(line):
            out.append(
                Finding(
                    src.path,
                    i,
                    "timedgraph-rebuild",
                    "TimedGraph built from an explicit field list; a future per-actor annotation "
                    "is silently defaulted here (the PR-4 withCapacities class) — use "
                    "TimedGraph::rebuildFrom / a whole-struct copy, or suppress with the "
                    "per-actor population argument",
                )
            )
        elif mutation.search(line):
            out.append(
                Finding(
                    src.path,
                    i,
                    "timedgraph-rebuild",
                    "per-actor TimedGraph annotation mutated directly outside rebuildFrom; "
                    "rebuilds that keep the actor set must copy the whole struct so no "
                    "annotation can be dropped (the PR-4 withCapacities class)",
                )
            )
    return out


BUDGET_WRITE_PATTERNS = [
    re.compile(r"tiles_\[[^\]]*\][^;<>!=]*(?:\+=|-=|=(?!=))"),
    re.compile(r"tiles_\[[^\]]*\]\s*\.\s*\w+\s*\.\s*(?:erase|clear|insert|emplace)\b"),
    re.compile(r"usedWires_\[[^\]]*\]\s*(?:\+=|-=|=(?!=))"),
    re.compile(r"freeFslLinks_\s*\.\s*(?:push_back|pop_back|erase|insert|clear|emplace)\b"),
    re.compile(r"nextFslIndex_\s*(?:\+\+|--|\+=|-=|=(?!=))"),
]


def check_budget_provenance(src: SourceFile) -> list[Finding]:
    """ResourceBudget reservation mutations that bypass the ledgers.

    The PR-6 leak class: a commit path that changes reservation state
    (tiles_, usedWires_, freeFslLinks_, nextFslIndex_) without recording
    per-client provenance in ledgers_ cannot be torn down by release(),
    so a departed client leaks capacity forever. Every mutating member
    function must touch the ledgers in the same body, or suppress on its
    signature with the reason the mutation is not client-owned (e.g. the
    platform baseline).
    """
    if src.path != "src/platform/resource_budget.cpp":
        return []
    signature = re.compile(r"\bResourceBudget::(\w+)")
    out = []
    i = 0
    n = len(src.code)
    while i < n:
        m = signature.search(src.code[i])
        if not m:
            i += 1
            continue
        # Find the function's opening brace, then track to its close.
        sig_line = i  # 0-based
        depth = 0
        body_start = None
        j = i
        while j < n:
            for ch in src.code[j]:
                if ch == "{":
                    depth += 1
                    if body_start is None:
                        body_start = j
                elif ch == "}":
                    depth -= 1
            if body_start is not None and depth == 0:
                break
            if body_start is None and ";" in src.code[j]:
                break  # declaration, not a definition
            j += 1
        if body_start is None:
            i += 1
            continue
        body = src.code[body_start : j + 1]
        writes = [
            body_start + k
            for k, line in enumerate(body)
            if any(p.search(line) for p in BUDGET_WRITE_PATTERNS)
        ]
        if writes and not any("ledgers_" in line for line in body):
            out.append(
                Finding(
                    src.path,
                    sig_line + 1,
                    "budget-provenance",
                    f"ResourceBudget::{m.group(1)} mutates reservation state without touching "
                    "the provenance ledgers (the PR-6 leak class): release() cannot tear this "
                    "down — record per-client provenance, or suppress with the reason the "
                    "mutation is not client-owned",
                )
            )
        i = j + 1
    return out


def check_float_exact(src: SourceFile) -> list[Finding]:
    """Floating point in the exact-rational analysis core.

    Throughput guarantees are exact Rationals; a float/double anywhere
    in analysis/ or sdf/ risks a rounded guarantee that is no longer
    conservative (and results that differ across compilers/FPUs).
    Timing instrumentation belongs in the callers, not these layers.
    """
    if not in_dirs(src.path, "src/analysis", "src/sdf"):
        return []
    pattern = re.compile(r"\b(?:float|double|long\s+double)\b")
    out = []
    for i, line in enumerate(src.nostr, 1):
        if pattern.search(line):
            out.append(
                Finding(
                    src.path,
                    i,
                    "float-exact",
                    "floating point in an exact-rational analysis path; guarantees must stay in "
                    "Rational/integer arithmetic — move measurement code to the caller, or "
                    "suppress with proof the value never reaches a guarantee",
                )
            )
    return out


NONDET_PATTERNS: list[tuple[re.Pattern[str], str, bool]] = [
    # (pattern, message, scan the string-stripped view?)
    (
        re.compile(r"std::rand\b|\bsrand\s*\("),
        "std::rand/srand: global hidden state, unspecified algorithm — use mamps::Rng with an "
        "explicit seed",
        True,
    ),
    (
        re.compile(r"\brandom_device\b"),
        "std::random_device: a fresh entropy source makes every run unreproducible — use "
        "mamps::Rng with an explicit seed",
        True,
    ),
    (
        re.compile(r"\bmt19937(?:_64)?\b"),
        "std::mt19937: naive seeding gives correlated streams and runs are hard to pin — use "
        "mamps::Rng with an explicit seed",
        True,
    ),
    (
        re.compile(r"\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)|\bsystem_clock\b"),
        "wall-clock time as an input: results depend on when the run happened — use "
        "steady_clock for durations and explicit seeds for randomness",
        True,
    ),
    (
        re.compile(r"std::(?:map|set|multimap|multiset)\s*<[^<>,]*\*\s*[,>]"),
        "pointer-keyed ordered container: iteration order follows allocation addresses, which "
        "vary run to run (ASLR) — key by a stable id instead",
        True,
    ),
    (
        re.compile(r'"[^"]*%p[^"]*"'),
        "pointer value formatted into a string: addresses vary run to run (ASLR) — if this "
        "reaches a key, a log, or a file, use a stable id instead",
        False,
    ),
]


def check_nondeterminism(src: SourceFile) -> list[Finding]:
    """Banned nondeterminism sources anywhere in src/."""
    if not src.path.startswith("src/"):
        return []
    out = []
    for pattern, message, use_nostr in NONDET_PATTERNS:
        view = src.nostr if use_nostr else src.code
        for i, line in enumerate(view, 1):
            if pattern.search(line):
                out.append(Finding(src.path, i, "nondeterminism", message))
    return out


CHECKS = {
    "unordered-deterministic": check_unordered_deterministic,
    "timedgraph-rebuild": check_timedgraph_rebuild,
    "budget-provenance": check_budget_provenance,
    "float-exact": check_float_exact,
    "nondeterminism": check_nondeterminism,
}


# ------------------------------------------------------------ driver


def scan_file(fs_path: str, effective_path: str) -> tuple[list[Finding], list[Finding]]:
    """Run every check on one file.

    Returns (findings after suppression, suppression-grammar errors).
    """
    with open(fs_path, encoding="utf-8", errors="replace") as f:
        raw = f.read().splitlines()
    code, nostr = strip_comments(raw)
    src = SourceFile(path=effective_path, raw=raw, code=code, nostr=nostr)

    suppressions: dict[int, set[str]] = {}  # 1-based line -> check ids
    errors: list[Finding] = []
    for i, line in enumerate(raw, 1):
        m = SUPPRESS_RE.search(line)
        if not m:
            continue
        check, justification = m.group(1), m.group(2)
        if check not in CHECKS:
            errors.append(
                Finding(effective_path, i, "lint-usage", f"lint:allow names unknown check '{check}'")
            )
            continue
        if not justification:
            errors.append(
                Finding(
                    effective_path,
                    i,
                    "lint-usage",
                    f"lint:allow({check}) without a justification — write "
                    f"'// lint:allow({check}) -- <why this is safe>'",
                )
            )
            continue
        suppressions.setdefault(i, set()).add(check)

    findings: list[Finding] = []
    for checker in CHECKS.values():
        for finding in checker(src):
            allowed = suppressions.get(finding.line, set()) | suppressions.get(
                finding.line - 1, set()
            )
            if finding.check in allowed:
                continue
            findings.append(finding)
    return findings, errors


def collect_targets(paths: list[str]) -> list[str]:
    files: list[str] = []
    for path in paths:
        fs = path if os.path.isabs(path) else os.path.join(REPO_ROOT, path)
        if os.path.isfile(fs):
            files.append(fs)
            continue
        for dirpath, dirnames, filenames in os.walk(fs):
            dirnames[:] = sorted(d for d in dirnames if d != "fixtures" or "tools" not in dirpath)
            for name in sorted(filenames):
                if name.endswith(CXX_EXTENSIONS):
                    files.append(os.path.join(dirpath, name))
    return files


def lint(paths: list[str]) -> int:
    targets = collect_targets(paths or DEFAULT_ROOTS)
    if not targets:
        print("mamps-lint: no C++ files found under the given paths", file=sys.stderr)
        return 2
    all_findings: list[Finding] = []
    for fs_path in targets:
        rel = os.path.relpath(fs_path, REPO_ROOT).replace(os.sep, "/")
        findings, errors = scan_file(fs_path, rel)
        all_findings.extend(errors)
        all_findings.extend(findings)
    for finding in all_findings:
        print(finding.render())
    counts: dict[str, int] = {}
    for finding in all_findings:
        counts[finding.check] = counts.get(finding.check, 0) + 1
    if all_findings:
        summary = ", ".join(f"{k}: {v}" for k, v in sorted(counts.items()))
        print(f"mamps-lint: {len(all_findings)} finding(s) in {len(targets)} file(s) ({summary})")
        return 1
    print(f"mamps-lint: clean ({len(targets)} files, {len(CHECKS)} checks)")
    return 0


def self_test() -> int:
    """Golden-fixture suite: every check must flag its positive fixture
    exactly where the lint:expect() markers say, and accept its
    suppressed twin completely. A check with no firing fixture fails —
    a check that silently stops matching is how a gate dies."""
    failures: list[str] = []
    fired: set[str] = set()
    accepted: set[str] = set()

    if not os.path.isdir(FIXTURE_DIR):
        print(f"mamps-lint: fixture directory missing: {FIXTURE_DIR}", file=sys.stderr)
        return 2

    for name in sorted(os.listdir(FIXTURE_DIR)):
        if not name.endswith(CXX_EXTENSIONS):
            continue
        fs_path = os.path.join(FIXTURE_DIR, name)
        with open(fs_path, encoding="utf-8") as f:
            raw = f.read().splitlines()
        m = FIXTURE_PATH_RE.search(raw[0]) if raw else None
        if not m:
            failures.append(f"{name}: first line must be '// lint-fixture-path: <pretend path>'")
            continue
        effective = m.group(1)
        expected: dict[tuple[int, str], bool] = {}
        for i, line in enumerate(raw, 1):
            for em in EXPECT_RE.finditer(line):
                expected[(i, em.group(1))] = False
        findings, errors = scan_file(fs_path, effective)
        for err in errors:
            failures.append(f"{name}: {err.render()}")
        for finding in findings:
            key = (finding.line, finding.check)
            if key in expected:
                expected[key] = True
                fired.add(finding.check)
            else:
                failures.append(f"{name}: unexpected finding: {finding.render()}")
        for (line, check), seen in expected.items():
            if not seen:
                failures.append(
                    f"{name}:{line}: expected [{check}] finding did not fire — the check "
                    "silently stopped matching"
                )
        if not expected and not findings and not errors:
            # A suppressed twin: it must contain at least one lint:allow.
            allows = {m.group(1) for line in raw for m in [SUPPRESS_RE.search(line)] if m}
            if allows:
                accepted.update(allows)
            else:
                failures.append(f"{name}: fixture has no expects and no suppressions — dead file")

    for check in CHECKS:
        if check not in fired:
            failures.append(f"check '{check}' has no positive fixture that fires — add one")
        if check not in accepted:
            failures.append(f"check '{check}' has no suppressed fixture it accepts — add one")

    if failures:
        for failure in failures:
            print(f"SELF-TEST FAIL: {failure}")
        print(f"mamps-lint --self-test: {len(failures)} failure(s)")
        return 1
    print(
        f"mamps-lint --self-test: ok ({len(CHECKS)} checks, every one fires on its positive "
        "fixture and accepts its suppressed twin)"
    )
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("paths", nargs="*", help="files or directories (default: src/)")
    parser.add_argument("--self-test", action="store_true", help="run the fixture suite")
    parser.add_argument("--list-checks", action="store_true", help="print the check registry")
    args = parser.parse_args()
    if args.list_checks:
        for name, fn in CHECKS.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{name}: {doc}")
        return 0
    if args.self_test:
        return self_test()
    return lint(args.paths)


if __name__ == "__main__":
    sys.exit(main())
