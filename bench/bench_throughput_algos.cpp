// Ablation: the throughput engines of the analysis module — the
// self-timed state-space exploration (exponential in graph size) and
// the maximum-cycle-ratio fast path on the HSDF expansion (polynomial),
// plus the unified computeThroughput entry point that picks between
// them. The engines compute identical values (asserted in the test
// suite); this bench compares their runtime as graphs grow, using
// google-benchmark. The BENCH_throughput.json trajectory at the repo
// root records these numbers across PRs. After the benchmarks, a perf
// regression gate re-times the unified MCR fast path directly and
// exits non-zero when the mean per-analysis latency exceeds 1.5x the
// committed trajectory's latest entry — wins recorded in
// BENCH_throughput.json cannot silently rot.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "analysis/buffer.hpp"
#include "analysis/mcm.hpp"
#include "analysis/throughput.hpp"
#include "sdf/graph.hpp"
#include "support/rng.hpp"

using namespace mamps;

namespace {

/// A ring of `n` actors with `tokens` initial tokens on the closing
/// edge and pseudo-random execution times.
sdf::TimedGraph makeRing(std::uint32_t n, std::uint64_t tokens, std::uint64_t seed) {
  Rng rng(seed);
  sdf::Graph g("ring");
  std::vector<sdf::ActorId> ids;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string actorName = "r";
    actorName += std::to_string(i);
    ids.push_back(g.addActor(std::move(actorName)));
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    g.connect(ids[i], 1, ids[(i + 1) % n], 1, (i + 1 == n) ? tokens : 0);
  }
  sdf::TimedGraph timed;
  timed.graph = std::move(g);
  for (std::uint32_t i = 0; i < n; ++i) {
    timed.execTime.push_back(rng.range(1, 50));
  }
  return timed;
}

/// Static-order resource constraints for a ring: actors are bound
/// round-robin to `resourceCount` shared resources, scheduled in ring
/// order (q is all-ones, so each actor appears once).
analysis::ResourceConstraints makeRingResources(std::uint32_t n, std::uint32_t resourceCount) {
  analysis::ResourceConstraints resources;
  resources.actorResource.resize(n);
  resources.staticOrder.resize(resourceCount);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t r = i % resourceCount;
    resources.actorResource[i] = r;
    resources.staticOrder[r].push_back(i);
  }
  return resources;
}

void BM_StateSpaceThroughput(benchmark::State& state) {
  const auto timed = makeRing(static_cast<std::uint32_t>(state.range(0)),
                              static_cast<std::uint64_t>(state.range(1)), 42);
  analysis::ThroughputOptions options;
  options.engine = analysis::ThroughputEngine::StateSpace;
  for (auto _ : state) {
    const auto result = analysis::computeThroughput(timed, options);
    benchmark::DoNotOptimize(result.iterationsPerCycle);
  }
}
BENCHMARK(BM_StateSpaceThroughput)->Args({4, 1})->Args({8, 2})->Args({16, 4})->Args({32, 8})->Args({64, 16});

void BM_McrThroughput(benchmark::State& state) {
  const auto timed = makeRing(static_cast<std::uint32_t>(state.range(0)),
                              static_cast<std::uint64_t>(state.range(1)), 42);
  for (auto _ : state) {
    const auto result = analysis::throughputViaMcr(timed);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_McrThroughput)
    ->Args({4, 1})
    ->Args({8, 2})
    ->Args({16, 4})
    ->Args({32, 8})
    ->Args({64, 16})
    ->Args({128, 32})
    ->Args({256, 64});

void BM_UnifiedThroughput(benchmark::State& state) {
  // The default entry point: Auto engine selection (these graphs take
  // the MCR fast path — asserted below via the engine field).
  const auto timed = makeRing(static_cast<std::uint32_t>(state.range(0)),
                              static_cast<std::uint64_t>(state.range(1)), 42);
  for (auto _ : state) {
    const auto result = analysis::computeThroughput(timed);
    benchmark::DoNotOptimize(result.iterationsPerCycle);
    if (result.engine != analysis::ThroughputEngine::Mcr) {
      state.SkipWithError("expected the MCR fast path");
    }
  }
}
BENCHMARK(BM_UnifiedThroughput)->Args({64, 16})->Args({128, 32})->Args({256, 64});

void BM_ScheduledThroughput(benchmark::State& state) {
  // Resource-constrained analysis (the flow's hot path on binding-aware
  // graphs): ring actors shared across 4 static-order resources.
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto timed = makeRing(n, static_cast<std::uint64_t>(state.range(1)), 42);
  const auto resources = makeRingResources(n, 4);
  for (auto _ : state) {
    const auto result = analysis::computeThroughput(timed, resources);
    benchmark::DoNotOptimize(result.iterationsPerCycle);
    if (result.engine != analysis::ThroughputEngine::Mcr) {
      state.SkipWithError("expected the MCR fast path");
    }
  }
}
BENCHMARK(BM_ScheduledThroughput)->Args({64, 16})->Args({128, 32})->Args({256, 64});

void BM_BufferSizing(benchmark::State& state) {
  const auto timed = makeRing(static_cast<std::uint32_t>(state.range(0)), 2, 7);
  for (auto _ : state) {
    const auto result = analysis::minimalDeadlockFreeCapacities(timed.graph);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_BufferSizing)->Arg(4)->Arg(8)->Arg(16);

/// Perf regression gate: mean wall time per computeThroughput call on
/// the unified MCR fast path over the three trajectory ring sizes,
/// against 1.5x the mean of the committed trajectory's latest
/// unified_auto entry (BENCH_throughput.json, PR 10). Update the
/// constant when appending an entry.
int runRegressionGate() {
  constexpr double kCommittedMeanMs = 0.13;
  constexpr double kGateFactor = 1.5;
  constexpr int kReps = 20;
  double totalMs = 0.0;
  int solves = 0;
  for (const std::uint32_t n : {64u, 128u, 256u}) {
    const auto timed = makeRing(n, n / 4, 42);
    auto warmup = analysis::computeThroughput(timed);
    benchmark::DoNotOptimize(warmup);
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kReps; ++i) {
      auto result = analysis::computeThroughput(timed);
      benchmark::DoNotOptimize(result);
    }
    const auto end = std::chrono::steady_clock::now();
    totalMs += std::chrono::duration<double, std::milli>(end - start).count();
    solves += kReps;
  }
  const double meanMs = totalMs / solves;
  const double limitMs = kGateFactor * kCommittedMeanMs;
  std::fprintf(stderr, "perf gate: unified MCR mean %.3f ms per analysis (limit %.3f ms)\n",
               meanMs, limitMs);
  if (meanMs > limitMs) {
    std::fprintf(stderr, "perf gate FAILED: regression vs committed trajectory\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return runRegressionGate();
}
