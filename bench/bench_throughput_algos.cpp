// Ablation: the two throughput engines of the analysis module — the
// self-timed state-space exploration (used by the flow on binding-aware
// graphs) and maximum-cycle-ratio analysis on the HSDF expansion. They
// compute identical values (asserted in the test suite); this bench
// compares their runtime as graphs grow, using google-benchmark.
#include <benchmark/benchmark.h>

#include "analysis/buffer.hpp"
#include "analysis/mcm.hpp"
#include "analysis/throughput.hpp"
#include "sdf/graph.hpp"
#include "support/rng.hpp"

using namespace mamps;

namespace {

/// A ring of `n` actors with `tokens` initial tokens on the closing
/// edge and pseudo-random execution times.
sdf::TimedGraph makeRing(std::uint32_t n, std::uint64_t tokens, std::uint64_t seed) {
  Rng rng(seed);
  sdf::Graph g("ring");
  std::vector<sdf::ActorId> ids;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string actorName = "r";
    actorName += std::to_string(i);
    ids.push_back(g.addActor(std::move(actorName)));
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    g.connect(ids[i], 1, ids[(i + 1) % n], 1, (i + 1 == n) ? tokens : 0);
  }
  sdf::TimedGraph timed;
  timed.graph = std::move(g);
  for (std::uint32_t i = 0; i < n; ++i) {
    timed.execTime.push_back(rng.range(1, 50));
  }
  return timed;
}

void BM_StateSpaceThroughput(benchmark::State& state) {
  const auto timed = makeRing(static_cast<std::uint32_t>(state.range(0)),
                              static_cast<std::uint64_t>(state.range(1)), 42);
  for (auto _ : state) {
    const auto result = analysis::computeThroughput(timed);
    benchmark::DoNotOptimize(result.iterationsPerCycle);
  }
}
BENCHMARK(BM_StateSpaceThroughput)->Args({4, 1})->Args({8, 2})->Args({16, 4})->Args({32, 8});

void BM_McrThroughput(benchmark::State& state) {
  const auto timed = makeRing(static_cast<std::uint32_t>(state.range(0)),
                              static_cast<std::uint64_t>(state.range(1)), 42);
  for (auto _ : state) {
    const auto result = analysis::throughputViaMcr(timed);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_McrThroughput)->Args({4, 1})->Args({8, 2})->Args({16, 4})->Args({32, 8});

void BM_BufferSizing(benchmark::State& state) {
  const auto timed = makeRing(static_cast<std::uint32_t>(state.range(0)), 2, 7);
  for (auto _ : state) {
    const auto result = analysis::minimalDeadlockFreeCapacities(timed.graph);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_BufferSizing)->Arg(4)->Arg(8)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
