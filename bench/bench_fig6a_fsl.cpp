// Figure 6(a): measured and predicted worst-case throughput of the
// MJPEG decoder for a synthetic sequence and a set of test sequences on
// the FSL interconnect.
//
// Paper (shape): all bars between ~0.8 and ~1.2 MCUs/MHz/s, worst-case
// analysis line just below the synthetic bars (<1% margin for the
// synthetic data), test-set bars slightly above the synthetic ones.
#include "mjpeg_experiment.hpp"

int main() {
  using namespace mamps::bench;
  const MjpegDeployment d = deployMjpeg(mamps::platform::InterconnectKind::Fsl);
  std::vector<SequencePoint> points;
  for (const std::string& name : corpus()) {
    points.push_back(evaluateSequence(d, name));
  }
  printFigure6Table("Figure 6(a) - FSL interconnect", points);
  std::printf("\nPaper reference: worst-case ~0.75, synthetic ~0.8 (margin < 1%%),\n");
  std::printf("test-set ~0.9-1.1 MCUs per MHz per second.\n");
  return 0;
}
