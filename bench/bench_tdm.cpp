// TDM processor-sharing capacity: for each platform preset, admit
// instances of every suite application until the first rejection, once
// on the exclusive-tile platform and once on its TDM variant (4-slot
// wheels, 2 slots per instance, 200-cycle switch overhead) — the same
// slice-relaxed application model on both sides, so the curves compare
// pure packing, not constraint luck. Also drains a 1000-event churn
// trace on each TDM platform as the slot-leak gate. Prints one JSON
// object to stdout; the trajectory at ../BENCH_tdm.json records the
// capacity curves across PRs. Exits non-zero when an admitted instance
// misses its constraint, TDM sharing fails to admit strictly more
// instances than exclusive tiles on the 12-tile mesh, a TDM capacity
// falls below its exclusive baseline anywhere, or the churn trace does
// not drain to a bit-identical pristine budget.
#include <cstdio>
#include <string>

#include "apps/suite/churn.hpp"
#include "mapping/admission.hpp"
#include "platform/arch_template.hpp"

using namespace mamps;

namespace {

constexpr std::uint32_t kSlotsPerWheel = 4;
constexpr std::uint32_t kSlotsPerApp = 2;
constexpr std::uint32_t kWheelOverheadCycles = 200;

struct Capacity {
  std::size_t instances = 0;
  bool allGuaranteesMet = true;
};

Capacity admitUntilFull(const platform::Architecture& arch,
                        const mapping::AppAnalysisCache& cache,
                        const mapping::MappingOptions& options) {
  mapping::AdmissionController controller(arch);
  Capacity capacity;
  for (;;) {
    const mapping::AdmissionDecision decision = controller.admit(cache, options);
    if (!decision.admitted()) {
      return capacity;
    }
    ++capacity.instances;
    if (!decision.result->meetsConstraint) {
      capacity.allGuaranteesMet = false;
    }
  }
}

}  // namespace

int main() {
  struct Platform {
    const char* name;
    platform::TemplateRequest request;
    bool requireStrictGain;  // the headline claim is pinned on the mesh
  };
  const Platform platforms[] = {
      {"mesh12_noc", platform::largeMeshPreset(12), true},
      {"hetero4_fsl", platform::heterogeneousPreset(4, {"accel"}), false},
  };

  const suite::ChurnWorkload workload =
      suite::suiteTdmChurnWorkload(kSlotsPerWheel, kSlotsPerApp);

  bool healthy = true;
  std::string rows;
  for (const Platform& p : platforms) {
    const platform::Architecture exclusiveArch = platform::generateFromTemplate(p.request);
    const platform::Architecture tdmArch = platform::generateFromTemplate(
        platform::withTdm(p.request, kSlotsPerWheel, kWheelOverheadCycles));

    bool strictGain = false;
    std::string apps;
    for (std::size_t i = 0; i < workload.caches.size(); ++i) {
      mapping::MappingOptions exclusiveOptions = workload.options[i];
      exclusiveOptions.tdmSlots = 0;  // claim whole (1-slot) wheels
      const Capacity exclusive =
          admitUntilFull(exclusiveArch, workload.caches[i], exclusiveOptions);
      const Capacity tdm = admitUntilFull(tdmArch, workload.caches[i], workload.options[i]);

      if (!exclusive.allGuaranteesMet || !tdm.allGuaranteesMet) {
        healthy = false;  // an admitted instance missed its constraint
      }
      if (tdm.instances < exclusive.instances) {
        healthy = false;  // sharing must never shrink capacity
      }
      strictGain = strictGain || tdm.instances > exclusive.instances;

      char row[256];
      std::snprintf(row, sizeof row,
                    "        {\"app\": \"%s\", \"exclusive_instances\": %zu, "
                    "\"tdm_instances\": %zu, \"all_guarantees_met\": %s}",
                    workload.names[i].c_str(), exclusive.instances, tdm.instances,
                    exclusive.allGuaranteesMet && tdm.allGuaranteesMet ? "true" : "false");
      apps += apps.empty() ? "" : ",\n";
      apps += row;
    }
    if (p.requireStrictGain && !strictGain) {
      healthy = false;  // the headline: sharing packs more onto the mesh
    }

    // Slot-leak gate: a 1000-event churn of the TDM mix must drain to a
    // bit-identical pristine budget (a leaked slot reservation would be
    // invisible to the capacity sweep for many PRs).
    mapping::AdmissionController controller(tdmArch);
    suite::ChurnOptions churnOptions;
    churnOptions.seed = 42;
    churnOptions.events = 1000;
    const suite::ChurnResult churn = suite::runChurnTrace(controller, workload, churnOptions);
    if (!churn.pristineAfterDrain) {
      healthy = false;
    }

    char row[2048];
    std::snprintf(row, sizeof row,
                  "    {\"platform\": \"%s\", \"slots_per_wheel\": %u, \"slots_per_app\": %u, "
                  "\"wheel_overhead_cycles\": %u,\n      \"apps\": [\n%s\n      ],\n"
                  "      \"strict_capacity_gain\": %s, \"churn_events\": %zu, "
                  "\"churn_pristine_after_drain\": %s}",
                  p.name, kSlotsPerWheel, kSlotsPerApp, kWheelOverheadCycles, apps.c_str(),
                  strictGain ? "true" : "false", churnOptions.events,
                  churn.pristineAfterDrain ? "true" : "false");
    rows += rows.empty() ? "" : ",\n";
    rows += row;
  }

  std::printf("{\n");
  std::printf("  \"bench\": \"bench_tdm\",\n");
  std::printf(
      "  \"workload\": \"per-application admission capacity until first rejection, "
      "exclusive tiles vs 4-slot TDM wheels (2 slots per instance), plus a 1000-event "
      "TDM churn drain\",\n");
  std::printf("  \"platforms\": [\n%s\n  ],\n", rows.c_str());
  std::printf("  \"healthy\": %s\n", healthy ? "true" : "false");
  std::printf("}\n");
  return healthy ? 0 : 1;
}
