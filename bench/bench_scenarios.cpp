// Cross-application scenario sweep: every built-in suite scenario is
// swept through the DSE engine over its recommended platforms x both
// serialization modes, exercising the MCR fast path, the incremental
// re-analysis, and the parallel sweep on graphs with genuinely
// different shapes (cyclic, deep multi-rate, fork-join, ring). Prints
// one JSON object to stdout; the trajectory at ../BENCH_scenarios.json
// records these numbers across PRs. Exits non-zero when any scenario
// has an infeasible recommended platform, a feasible point without a
// throughput verdict, or a point that left the MCR fast path.
#include <cstdio>
#include <string>

#include "apps/suite/suite.hpp"
#include "mapping/dse.hpp"

using namespace mamps;

int main() {
  bool healthy = true;
  std::string rows;
  double totalSeconds = 0.0;
  std::size_t totalPoints = 0;

  for (const suite::Scenario& s : suite::builtinScenarios()) {
    const auto points = suite::scenarioDesignPoints(s);
    const mapping::DseResult sweep = mapping::exploreDesignSpace(s.model, points, {});
    totalSeconds += sweep.totalSeconds;
    totalPoints += sweep.points.size();

    std::size_t met = 0;
    Rational best(0);
    std::string bestLabel;
    for (const mapping::DesignPointResult& point : sweep.points) {
      if (!point.feasible()) {
        healthy = false;  // every recommended platform must map
        continue;
      }
      const auto& throughput = point.mapping->throughput;
      if (!throughput.ok() || throughput.engine != analysis::ThroughputEngine::Mcr) {
        healthy = false;
        continue;
      }
      met += point.mapping->meetsConstraint ? 1 : 0;
      if (throughput.iterationsPerCycle > best) {
        best = throughput.iterationsPerCycle;
        bestLabel = point.label;
      }
    }

    char row[512];
    std::snprintf(row, sizeof row,
                  "    {\"name\": \"%s\", \"points\": %zu, \"feasible\": %zu, "
                  "\"meets_constraint\": %zu, \"best\": \"%lld/%lld\", "
                  "\"best_point\": \"%s\", \"mean_point_ms\": %.2f}",
                  s.name.c_str(), sweep.points.size(), sweep.feasibleCount(), met,
                  static_cast<long long>(best.num()), static_cast<long long>(best.den()),
                  bestLabel.c_str(), sweep.meanPointSeconds() * 1e3);
    rows += rows.empty() ? "" : ",\n";
    rows += row;
  }

  std::printf("{\n");
  std::printf("  \"bench\": \"bench_scenarios\",\n");
  std::printf("  \"workload\": \"suite scenarios x recommended platforms x {PE, CA}\",\n");
  std::printf("  \"total_points\": %zu,\n", totalPoints);
  std::printf("  \"total_seconds\": %.3f,\n", totalSeconds);
  std::printf("  \"scenarios\": [\n%s\n  ],\n", rows.c_str());
  std::printf("  \"healthy\": %s\n", healthy ? "true" : "false");
  std::printf("}\n");
  return healthy ? 0 : 1;
}
