// Section 5.3.1: "The changes to the NoC [adding flow control] required
// approximately 12% more slices on the FPGA when compared to the
// original implementation." Reproduced by the slice-area model for a
// range of mesh sizes.
#include <cstdio>

#include "platform/arch_template.hpp"
#include "platform/area.hpp"

int main() {
  using namespace mamps::platform;

  std::printf("Section 5.3.1 - SDM NoC flow-control area overhead\n\n");
  std::printf("%-8s %-8s %14s %14s %10s\n", "mesh", "wires", "no flow-ctl", "flow-ctl",
              "overhead");

  for (const std::uint32_t tiles : {2u, 4u, 6u, 9u, 16u}) {
    for (const std::uint32_t wires : {16u, 32u}) {
      TemplateRequest request;
      request.tileCount = tiles;
      request.interconnect = InterconnectKind::NocMesh;
      request.nocWiresPerLink = wires;
      const Architecture arch = generateFromTemplate(request);

      NocConfig with = arch.noc();
      with.flowControl = true;
      NocConfig without = arch.noc();
      without.flowControl = false;
      const std::uint32_t routers = with.rows * with.cols;
      const std::uint32_t slicesWith = routers * nocRouterSlices(with);
      const std::uint32_t slicesWithout = routers * nocRouterSlices(without);
      std::printf("%ux%-6u %-8u %14u %14u %9.1f%%\n", with.rows, with.cols, wires,
                  slicesWithout, slicesWith,
                  100.0 * (static_cast<double>(slicesWith) / slicesWithout - 1.0));
    }
  }
  std::printf("\nPaper: approximately 12%% more slices with flow control.\n");
  return 0;
}
