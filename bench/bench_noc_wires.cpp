// Ablation: SDM wire allocation. The NoC assigns each connection a
// number of wires; a word needs ceil(32/wires) cycles, so connection
// bandwidth trades directly against how many connections a link can
// carry (Section 5.3.1: "wires can only be assigned to a single
// connection at a given time"). Sweeps the per-connection wire request
// for the MJPEG mapping.
#include <cstdio>

#include "mjpeg_experiment.hpp"

int main() {
  using namespace mamps;
  using namespace mamps::bench;

  const auto app = mjpeg::buildMjpegApp(
      mjpeg::calibrateWcets(encodeNamedSequence("synthetic")));

  std::printf("NoC wires per connection vs guaranteed throughput (MJPEG, 3 tiles)\n\n");
  std::printf("%-7s %12s %16s\n", "wires", "cyc/word", "MCUs per Mcycle");

  platform::TemplateRequest request;
  request.tileCount = 3;
  request.interconnect = platform::InterconnectKind::NocMesh;
  const platform::Architecture arch = platform::generateFromTemplate(request);

  for (const std::uint32_t wires : {1u, 2u, 4u, 8u, 16u, 32u}) {
    mapping::MappingOptions options;
    options.nocWiresPerConnection = wires;
    const auto result = mapping::mapApplication(app.model, arch, options);
    if (!result || !result->throughput.ok()) {
      std::printf("%-7u %12s %16s\n", wires, "-", "infeasible");
      continue;
    }
    std::printf("%-7u %12u %16.4f\n", wires, platform::WireAllocator::cyclesPerWord(wires),
                result->throughput.iterationsPerCycle.toDouble() * 1e6);
  }
  std::printf("\nShape: once the connection is fast enough that the PEs dominate,\n");
  std::printf("extra wires stop helping — the flow can then pack more connections\n");
  std::printf("per link instead.\n");
  return 0;
}
