// Figure 4 / Section 4.2: the parameterized interconnect communication
// model. Sweeps the model parameters (w = words in flight, alpha_n =
// connection buffering, wires per SDM connection) on a producer/consumer
// stream and reports the resulting guaranteed throughput, demonstrating
// the latency-rate behaviour of the c1/c2 stage and the back-pressure of
// the alpha buffers.
#include <cstdio>
#include <map>

#include "analysis/throughput.hpp"
#include "comm/model.hpp"
#include "platform/noc_topology.hpp"
#include "sdf/graph.hpp"

using namespace mamps;

namespace {

sdf::TimedGraph streamPair(std::uint64_t actorTime) {
  sdf::Graph g("stream");
  const auto a = g.addActor("src");
  const auto b = g.addActor("dst");
  sdf::ChannelSpec spec;
  spec.src = a;
  spec.dst = b;
  spec.tokenSizeBytes = 128;  // 32 words per token
  spec.name = "fwd";
  g.connect(spec);
  g.connect(b, 1, a, 1, 8, "window");
  return sdf::TimedGraph{std::move(g), {actorTime, actorTime}, {}};
}

double throughputWith(const comm::CommModelParams& params) {
  const sdf::TimedGraph plain = streamPair(40);
  const auto expansion =
      comm::expandChannels(plain, {{*plain.graph.findChannel("fwd"), params}});
  const auto result = analysis::computeThroughput(expansion.graph);
  return result.ok() ? result.iterationsPerCycle.toDouble() : 0.0;
}

comm::CommModelParams baseParams() {
  comm::CommModelParams p;
  p.wordsPerToken = 32;
  p.serializeTime = 0;
  p.deserializeTime = 0;
  p.cyclesPerWord = 1;
  p.latencyCycles = 6;
  p.wordsInFlight = 2;
  p.connectionBufferWords = 32;
  p.txBufferWords = 32;
  p.srcBufferTokens = 4;
  p.dstBufferTokens = 4;
  return p;
}

}  // namespace

int main() {
  std::printf("Figure 4 - parameterized communication model (32-word tokens)\n\n");

  std::printf("Throughput vs words in flight (w), latency 6 cycles:\n");
  std::printf("%-6s %18s\n", "w", "iterations/kcycle");
  for (const std::uint32_t w : {1u, 2u, 3u, 4u, 6u, 8u}) {
    comm::CommModelParams p = baseParams();
    p.wordsInFlight = w;
    std::printf("%-6u %18.4f\n", w, throughputWith(p) * 1e3);
  }

  std::printf("\nThroughput vs connection buffering (alpha_n):\n");
  std::printf("%-8s %18s\n", "alpha_n", "iterations/kcycle");
  for (const std::uint32_t alpha : {32u, 48u, 64u, 96u, 128u}) {
    comm::CommModelParams p = baseParams();
    p.wordsInFlight = 8;
    p.connectionBufferWords = alpha;
    std::printf("%-8u %18.4f\n", alpha, throughputWith(p) * 1e3);
  }

  std::printf("\nThroughput vs SDM wires (rate = ceil(32/wires) cycles/word):\n");
  std::printf("%-6s %12s %18s\n", "wires", "cyc/word", "iterations/kcycle");
  for (const std::uint32_t wires : {32u, 16u, 8u, 4u, 2u, 1u}) {
    comm::CommModelParams p = baseParams();
    p.wordsInFlight = 8;
    p.cyclesPerWord = platform::WireAllocator::cyclesPerWord(wires);
    std::printf("%-6u %12llu %18.4f\n", wires,
                static_cast<unsigned long long>(p.cyclesPerWord), throughputWith(p) * 1e3);
  }

  std::printf("\nShape: throughput saturates once w covers the latency-rate\n");
  std::printf("product and degrades inversely with cycles-per-word; alpha_n\n");
  std::printf("beyond one token adds pipelining headroom (Section 4.2).\n");
  return 0;
}
