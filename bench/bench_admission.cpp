// Online admission-control churn: seeded arrival/departure traces of
// the scenario-suite applications against one live shared platform
// (the 12-tile SDM mesh and the heterogeneous FSL preset). Each trace
// runs twice on the same controller: the first pass populates the plan
// cache (decisions mix cold full-mapping runs and replays), the second
// replays the identical event stream fully warm — the steady-state
// serving latency. Prints one JSON object to stdout; the trajectory at
// ../BENCH_admission.json records these numbers across PRs. Exits
// non-zero when a trace fails budget conservation (the drained budget
// must be bit-identical to pristine), the warm pass misses the plan
// cache, or the warm p99 decision latency reaches 1 ms.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/suite/churn.hpp"
#include "platform/arch_template.hpp"

using namespace mamps;

namespace {

double percentileMs(std::vector<double> seconds, double p) {
  if (seconds.empty()) {
    return 0.0;
  }
  std::sort(seconds.begin(), seconds.end());
  const auto rank = static_cast<std::size_t>(p * static_cast<double>(seconds.size() - 1) + 0.5);
  return seconds[rank] * 1e3;
}

}  // namespace

int main() {
  struct Platform {
    const char* name;
    platform::TemplateRequest request;
  };
  const Platform platforms[] = {
      {"mesh12_noc", platform::largeMeshPreset(12)},
      {"hetero4_fsl", platform::heterogeneousPreset(4, {"accel"})},
  };

  const suite::ChurnWorkload workload = suite::suiteChurnWorkload();
  suite::ChurnOptions options;
  options.seed = 42;
  options.events = 1000;

  bool healthy = true;
  std::string rows;
  for (const Platform& p : platforms) {
    const platform::Architecture arch = platform::generateFromTemplate(p.request);
    mapping::AdmissionController controller(arch);

    // Pass 1 populates the plan cache; pass 2 replays the identical
    // seeded event stream fully warm (the controller drains between
    // passes, so the residual-state sequence repeats exactly).
    const suite::ChurnResult cold = suite::runChurnTrace(controller, workload, options);
    const suite::ChurnResult warm = suite::runChurnTrace(controller, workload, options);

    if (!cold.pristineAfterDrain || !warm.pristineAfterDrain) {
      healthy = false;  // a leak: churn did not conserve the budget
    }
    if (warm.stats.planCacheHits != cold.stats.planCacheHits + warm.admitSeconds.size()) {
      healthy = false;  // the warm pass must be replays end to end
    }
    const double warmP99 = percentileMs(warm.admitSeconds, 0.99);
    if (warmP99 >= 1.0) {
      healthy = false;  // the sub-millisecond admission story
    }

    char row[640];
    std::snprintf(row, sizeof row,
                  "    {\"platform\": \"%s\", \"events_per_pass\": %zu, "
                  "\"arrivals\": %zu, \"admitted\": %zu, \"rejected\": %zu, "
                  "\"cold_plan_cache_hits\": %zu, "
                  "\"cold_p50_ms\": %.4f, \"cold_p99_ms\": %.4f, "
                  "\"warm_p50_ms\": %.4f, \"warm_p99_ms\": %.4f, "
                  "\"pristine_after_drain\": %s}",
                  p.name, options.events, cold.admitSeconds.size(),
                  static_cast<std::size_t>(cold.stats.admitted),
                  static_cast<std::size_t>(cold.stats.rejected),
                  static_cast<std::size_t>(cold.stats.planCacheHits),
                  percentileMs(cold.admitSeconds, 0.50), percentileMs(cold.admitSeconds, 0.99),
                  percentileMs(warm.admitSeconds, 0.50), warmP99,
                  cold.pristineAfterDrain && warm.pristineAfterDrain ? "true" : "false");
    rows += rows.empty() ? "" : ",\n";
    rows += row;
  }

  std::printf("{\n");
  std::printf("  \"bench\": \"bench_admission\",\n");
  std::printf(
      "  \"workload\": \"seeded admission/departure churn of the scenario suite on one live "
      "platform, cold then warm pass\",\n");
  std::printf("  \"platforms\": [\n%s\n  ],\n", rows.c_str());
  std::printf("  \"healthy\": %s\n", healthy ? "true" : "false");
  std::printf("}\n");
  return healthy ? 0 : 1;
}
