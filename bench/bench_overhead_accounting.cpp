// Section 6.3, modeling overhead: (a) the subHeader initialization
// channels use "only 1% of the communication"; (b) the fixed output
// rate of 10 blocks per MCU pads with dummy blocks when the sampling
// needs fewer. Both quantified on the simulated platform.
#include <cstdio>

#include "mjpeg_experiment.hpp"

int main() {
  using namespace mamps;
  using namespace mamps::bench;

  const MjpegDeployment d = deployMjpeg(platform::InterconnectKind::Fsl);
  const auto stream = encodeNamedSequence("plasma");

  sim::PlatformSim simulator(d.app.model, d.arch, d.result.mapping);
  mjpeg::attachMjpegBehaviors(simulator, d.app, stream);
  sim::SimOptions options;
  options.warmupIterations = 0;
  options.measureIterations = 48;
  const sim::SimResult result = simulator.run(options);
  if (!result.ok()) {
    std::printf("simulation failed\n");
    return 1;
  }

  std::printf("Section 6.3 - communication and modeling overhead (48 MCUs, FSL)\n\n");
  std::uint64_t total = 0;
  std::uint64_t subHeader = 0;
  const sdf::Graph& g = d.app.model.graph();
  std::printf("%-14s %12s\n", "channel", "bytes moved");
  for (sdf::ChannelId c = 0; c < g.channelCount(); ++c) {
    if (result.interTileBytes[c] == 0) {
      continue;
    }
    std::printf("%-14s %12llu\n", g.channel(c).name.c_str(),
                static_cast<unsigned long long>(result.interTileBytes[c]));
    total += result.interTileBytes[c];
    if (g.channel(c).name.rfind("subHeader", 0) == 0) {
      subHeader += result.interTileBytes[c];
    }
  }
  std::printf("\nsubHeader share of inter-tile communication: %.2f%% (paper: ~1%%)\n",
              total == 0 ? 0.0 : 100.0 * static_cast<double>(subHeader) / total);

  // Fixed-rate padding: the VLD's SDF rate is pinned at the JPEG
  // worst case of 10 blocks; samplings that code fewer pad with dummy
  // tokens — the modeling overhead of the pure-SDF representation.
  std::printf("\nFixed-rate padding per sampling (VLD rate is always %u):\n",
              mjpeg::kBlockRate);
  std::printf("%-10s %8s %8s %10s\n", "sampling", "coded", "dummy", "padding");
  const auto row = [](const char* name, mjpeg::Sampling s) {
    const std::uint32_t coded = mjpeg::blocksPerMcu(s);
    std::printf("%-10s %8u %8u %9.0f%%\n", name, coded, mjpeg::kBlockRate - coded,
                100.0 * (mjpeg::kBlockRate - coded) / mjpeg::kBlockRate);
  };
  row("4:4:4", mjpeg::Sampling::Yuv444);
  row("4:2:2", mjpeg::Sampling::Yuv422);
  row("4:2:0", mjpeg::Sampling::Yuv420);
  row("10-block", mjpeg::Sampling::Yuv410);
  std::printf("(The streams in this bench use the 10-block sampling: no padding.)\n");
  return 0;
}
