// Figure 6(b): the same experiment as Figure 6(a) on the SDM NoC
// interconnect. The NoC adds router latency and serializes words over
// the reserved SDM wires, so every series sits at or slightly below its
// FSL counterpart while the conservative-bound relation is unchanged.
#include "mjpeg_experiment.hpp"

int main() {
  using namespace mamps::bench;
  const MjpegDeployment noc = deployMjpeg(mamps::platform::InterconnectKind::NocMesh);
  std::vector<SequencePoint> points;
  for (const std::string& name : corpus()) {
    points.push_back(evaluateSequence(noc, name));
  }
  printFigure6Table("Figure 6(b) - NoC interconnect", points);

  // Cross-check the FSL-vs-NoC relation of Section 5.3.1.
  const MjpegDeployment fsl = deployMjpeg(mamps::platform::InterconnectKind::Fsl);
  std::printf("\nGuaranteed throughput FSL vs NoC: %.4f vs %.4f MCUs/MHz/s (FSL >= NoC: %s)\n",
              fsl.result.throughput.iterationsPerCycle.toDouble() * 1e6,
              noc.result.throughput.iterationsPerCycle.toDouble() * 1e6,
              fsl.result.throughput.iterationsPerCycle >=
                      noc.result.throughput.iterationsPerCycle
                  ? "yes"
                  : "no");
  return 0;
}
