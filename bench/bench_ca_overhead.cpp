// Section 6.3, second experiment: replace the worst-case execution time
// of the PE (de)serialization routines with the communication assist of
// [13] (the serialization no longer counts towards the processing
// element) and re-run the SDF3 analysis with the actors mapped to the
// same resources. The paper reports up to 300% higher throughput.
// Like the paper, this is an analytic (SDF3) experiment: "this result
// could not be verified on hardware because there is currently no
// support for tiles using a CA".
#include <cstdio>

#include "mjpeg_experiment.hpp"

int main() {
  using namespace mamps;
  using namespace mamps::bench;

  std::printf("Section 6.3 - Communication-assist experiment (SDF3 analysis)\n\n");
  std::printf("%-10s %18s %18s %10s\n", "network", "PE-serial (MCU/Mc)", "CA (MCU/Mc)",
              "increase");

  for (const auto kind :
       {platform::InterconnectKind::Fsl, platform::InterconnectKind::NocMesh}) {
    // Baseline mapping with PE-based serialization.
    const MjpegDeployment base = deployMjpeg(kind);
    const double pe = base.result.throughput.iterationsPerCycle.toDouble();

    // Same binding, schedules, routes, and buffers — only the
    // serialization moves to the CA.
    mapping::Mapping caMapping = base.result.mapping;
    caMapping.serialization = comm::SerializationMode::CommAssist;
    std::vector<std::uint64_t> wcets(base.app.model.graph().actorCount());
    for (sdf::ActorId a = 0; a < wcets.size(); ++a) {
      wcets[a] = base.app.model.implementations(a).front().wcetCycles;
    }
    const auto ca = mapping::analyzeMapping(base.app.model, base.arch, caMapping, wcets);
    if (!ca.ok()) {
      std::printf("CA analysis failed\n");
      return 1;
    }
    const double caThroughput = ca.iterationsPerCycle.toDouble();
    std::printf("%-10s %18.4f %18.4f %9.1f%%\n",
                std::string(platform::interconnectKindName(kind)).c_str(), pe * 1e6,
                caThroughput * 1e6, 100.0 * (caThroughput / pe - 1.0));
  }

  std::printf("\nPaper: 'an increased throughput for our case-study by up to 300%%\n");
  std::printf("when actors were mapped to the same resources'. The gain is bounded\n");
  std::printf("by the serialization share of the bottleneck tile's time; with our\n");
  std::printf("calibrated compute-heavy actors that share is small, so the MJPEG\n");
  std::printf("gain is modest. The stress case below shows a communication-\n");
  std::printf("dominated configuration reaching the paper's 300%% regime.\n");

  // Communication-dominated stress variant: tiny compute, fat tokens —
  // the regime in which the CA's 300% materializes.
  {
    sdf::Graph g("commheavy");
    const auto a = g.addActor("producer");
    const auto b = g.addActor("consumer");
    sdf::ChannelSpec spec;
    spec.src = a;
    spec.dst = b;
    spec.tokenSizeBytes = 2048;  // 512 words per token
    spec.name = "stream";
    g.connect(spec);
    g.connect(b, 1, a, 1, 4, "window");
    sdf::ApplicationModel model(std::move(g));
    for (sdf::ActorId actor = 0; actor < 2; ++actor) {
      sdf::ActorImplementation impl;
      impl.functionName = actor == 0 ? "produce" : "consume";
      impl.processorType = "microblaze";
      impl.wcetCycles = 300;
      impl.instrMemBytes = 2048;
      impl.dataMemBytes = 4096;
      impl.argumentChannels = {0};
      model.addImplementation(actor, impl);
    }
    model.setImplicit(1, true);

    platform::TemplateRequest request;
    request.tileCount = 2;
    // Deep FSL FIFOs double-buffer whole tokens in the NI, letting the
    // CA, the link, and the PEs pipeline fully.
    request.fslFifoDepthWords = 2048;
    const platform::Architecture arch = platform::generateFromTemplate(request);
    mapping::MappingOptions options;
    options.serialization = comm::SerializationMode::OnProcessor;
    const auto pe = mapping::mapApplication(model, arch, options);
    options.serialization = comm::SerializationMode::CommAssist;
    const auto ca = mapping::mapApplication(model, arch, options);
    if (pe && ca && pe->throughput.ok() && ca->throughput.ok()) {
      const double gain = ca->throughput.iterationsPerCycle.toDouble() /
                          pe->throughput.iterationsPerCycle.toDouble();
      std::printf("\nStress case (2048-byte tokens, 300-cycle actors, FSL):\n");
      std::printf("  PE-serialization: %.4f iter/Mcycle, CA: %.4f iter/Mcycle -> +%.0f%%\n",
                  pe->throughput.iterationsPerCycle.toDouble() * 1e6,
                  ca->throughput.iterationsPerCycle.toDouble() * 1e6, 100.0 * (gain - 1.0));
    }
  }
  return 0;
}
