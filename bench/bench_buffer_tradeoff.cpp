// Ablation (design choice in DESIGN.md): the throughput / buffer-size
// trade-off behind the flow's buffer distribution step. A streaming
// producer/consumer pair with large tokens is mapped across two tiles;
// sweeping alpha_src/alpha_dst shows throughput rising with buffering
// until the pipeline is fully decoupled, then saturating — the curve
// that justifies stopping buffer growth once the constraint is met.
#include <cstdio>

#include "analysis/buffer.hpp"
#include "mapping/flow.hpp"
#include "platform/arch_template.hpp"
#include "sdf/app_model.hpp"

using namespace mamps;

namespace {

sdf::ApplicationModel streamApp() {
  sdf::Graph g("stream");
  const auto a = g.addActor("producer");
  const auto b = g.addActor("consumer");
  sdf::ChannelSpec spec;
  spec.src = a;
  spec.dst = b;
  spec.tokenSizeBytes = 1024;  // 256 words: transport matters
  spec.name = "data";
  g.connect(spec);
  g.connect(b, 1, a, 1, 16, "window");
  sdf::ApplicationModel model(std::move(g));
  for (sdf::ActorId actor = 0; actor < 2; ++actor) {
    sdf::ActorImplementation impl;
    impl.functionName = actor == 0 ? "produce" : "consume";
    impl.processorType = "microblaze";
    impl.wcetCycles = 400;
    impl.instrMemBytes = 2048;
    impl.dataMemBytes = 8192;
    impl.argumentChannels = {0};
    model.addImplementation(actor, impl);
  }
  model.setImplicit(1, true);  // the window edge carries no data
  return model;
}

}  // namespace

int main() {
  const sdf::ApplicationModel app = streamApp();
  platform::TemplateRequest request;
  request.tileCount = 2;
  request.fslFifoDepthWords = 1024;  // NI depth is not the variable here
  const platform::Architecture arch = platform::generateFromTemplate(request);
  // CA-based serialization: the PEs stay light and the token buffers
  // (alpha_src / alpha_dst) alone decide how far the stages overlap.
  mapping::MappingOptions options;
  options.serialization = comm::SerializationMode::CommAssist;
  const auto base = mapping::mapApplication(app, arch, options);
  if (!base) {
    std::printf("mapping failed\n");
    return 1;
  }

  std::printf("Buffer-size / throughput trade-off (1 kB tokens across FSL)\n\n");
  std::printf("%-10s %-10s %14s %18s\n", "alpha_src", "alpha_dst", "buffer bytes",
              "iterations/Mcycle");
  for (const std::uint64_t alpha : {1u, 2u, 3u, 4u, 6u, 8u, 12u}) {
    mapping::Mapping m = base->mapping;
    std::uint64_t bytes = 0;
    const sdf::Graph& g = app.graph();
    // Sweep only the data channel; the feedback window keeps the buffers
    // the flow assigned (it must hold its 16 initial tokens).
    const sdf::ChannelId data = *g.findChannel("data");
    if (m.channelRoutes[data].interTile) {
      m.srcBufferTokens[data] = alpha;
      m.dstBufferTokens[data] = alpha;
      bytes += 2 * alpha * g.channel(data).tokenSizeBytes;
    }
    const auto throughput = mapping::analyzeMapping(app, arch, m, {400, 400});
    std::printf("%-10llu %-10llu %14llu %18.2f\n",
                static_cast<unsigned long long>(alpha),
                static_cast<unsigned long long>(alpha),
                static_cast<unsigned long long>(bytes),
                throughput.ok() ? throughput.iterationsPerCycle.toDouble() * 1e6 : 0.0);
  }
  std::printf("\nShape: with one-deep buffers the producer, link, and consumer\n");
  std::printf("serialize; each extra token of buffering overlaps more of the\n");
  std::printf("pipeline until the slowest stage alone limits throughput.\n");
  return 0;
}
