// Fault-injection survival: fill each platform preset with suite
// applications, then fail k tiles simultaneously (k = 1..cap) and
// measure how many residents the controller re-admits onto the healthy
// residual — the survival curve fraction(recovered)/stranded per k —
// plus the recovery-latency p99 over a seeded fault-churn trace.
// Prints one JSON object to stdout; the trajectory at
// ../BENCH_faults.json records the curves across PRs. Exits non-zero
// when a single tile failure on the filled 12-tile mesh fails to
// recover at least one stranded app, any post-recovery resident still
// references a failed resource or misses its guarantee, a
// fail -> repair -> drain cycle does not land on a bit-identical
// pristine budget, or the fault-churn trace leaks.
#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "apps/suite/churn.hpp"
#include "mapping/admission.hpp"
#include "platform/arch_template.hpp"

using namespace mamps;

namespace {

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) {
    return 0.0;
  }
  std::sort(samples.begin(), samples.end());
  const std::size_t rank = static_cast<std::size_t>(p * static_cast<double>(samples.size() - 1));
  return samples[rank];
}

// Admit suite applications round-robin until a full pass admits nobody.
std::size_t fillPlatform(mapping::AdmissionController& controller,
                         const suite::ChurnWorkload& workload) {
  for (;;) {
    bool any = false;
    for (std::size_t app = 0; app < workload.caches.size(); ++app) {
      any = controller.admit(workload.caches[app], workload.options[app]).admitted() || any;
    }
    if (!any) {
      return controller.residentCount();
    }
  }
}

// The k tiles to fail: resident-carrying tiles first (in resident id
// order — failing empty tiles measures nothing), then free ones.
std::vector<platform::TileId> pickVictims(const mapping::AdmissionController& controller,
                                          std::size_t k) {
  std::vector<platform::TileId> victims;
  std::set<platform::TileId> seen;
  const auto take = [&](platform::TileId tile) {
    if (victims.size() < k && seen.insert(tile).second) {
      victims.push_back(tile);
    }
  };
  for (const mapping::ClientId client : controller.residentIds()) {
    const platform::ClientLedger* ledger = controller.budget().ledger(client);
    for (const auto& [tile, share] : ledger->tiles) {
      take(tile);
    }
  }
  const std::size_t tiles = controller.budget().arch()->tileCount();
  for (platform::TileId t = 0; t < tiles; ++t) {
    take(t);
  }
  return victims;
}

// Post-recovery invariants: nothing resident references a failed tile,
// and every resident's (possibly refreshed) guarantee still composes.
bool recoveryIsClean(const mapping::AdmissionController& controller,
                     const std::vector<platform::TileId>& failed) {
  if (!controller.budget().strandedClients().empty()) {
    return false;
  }
  for (const mapping::ClientId client : controller.residentIds()) {
    const platform::ClientLedger* ledger = controller.budget().ledger(client);
    if (ledger == nullptr || !controller.resident(client).meetsConstraint) {
      return false;
    }
    for (const platform::TileId tile : failed) {
      if (ledger->tiles.count(tile) != 0) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main() {
  struct Platform {
    const char* name;
    platform::TemplateRequest request;
    std::size_t maxSimultaneousFailures;
    std::uint32_t spareTiles;  // RecoveryPolicy headroom kept free for recovery
    bool requireSingleFailureRecovery;  // the headline gate, pinned on the mesh
  };
  const Platform platforms[] = {
      {"mesh12_noc", platform::largeMeshPreset(12), 6, 2, true},
      {"hetero4_fsl", platform::heterogeneousPreset(4, {"accel"}), 3, 1, false},
  };

  const suite::ChurnWorkload workload = suite::suiteChurnWorkload();

  bool healthy = true;
  std::string rows;
  for (const Platform& p : platforms) {
    const platform::Architecture arch = platform::generateFromTemplate(p.request);

    // Survival curve: fresh filled controller per k, fail k tiles at
    // once, count who comes back.
    std::string curve;
    // Fill under the spare-tile headroom: admissions stop while the
    // reserve remains free, so recovery has room to re-land evacuees
    // (the policy the survival curve is measuring).
    mapping::AdmissionOptions admissionOptions;
    admissionOptions.recovery.spareTiles = p.spareTiles;
    for (std::size_t k = 1; k <= p.maxSimultaneousFailures && k + 1 < arch.tileCount(); ++k) {
      mapping::AdmissionController controller(arch, admissionOptions);
      const std::size_t residentsBefore = fillPlatform(controller, workload);
      const std::vector<platform::TileId> victims = pickVictims(controller, k);

      std::size_t stranded = 0;
      std::size_t recovered = 0;
      double recoverySeconds = 0.0;
      for (const platform::TileId tile : victims) {
        const mapping::RecoveryReport report =
            controller.injectFault(mapping::FaultEvent::tileFailure(tile));
        stranded += report.stranded.size();
        recovered += report.recovered.size();
        recoverySeconds += report.seconds;
      }
      if (!recoveryIsClean(controller, victims)) {
        healthy = false;  // a recovered platform still references a failure
      }
      if (p.requireSingleFailureRecovery && k == 1 && (stranded == 0 || recovered == 0)) {
        healthy = false;  // the headline: one tile down, at least one app back
      }

      // fail -> repair -> drain must land on bit-identical pristine.
      for (const platform::TileId tile : victims) {
        controller.repair(mapping::FaultEvent::tileFailure(tile));
      }
      for (const mapping::ClientId client : controller.residentIds()) {
        controller.depart(client);
      }
      if (!controller.pristine()) {
        healthy = false;  // the fail/repair cycle leaked
      }

      char row[256];
      std::snprintf(row, sizeof row,
                    "        {\"tile_failures\": %zu, \"residents\": %zu, \"stranded\": %zu, "
                    "\"recovered\": %zu, \"survival\": %.3f, \"recovery_seconds\": %.6f}",
                    k, residentsBefore, stranded, recovered,
                    stranded == 0 ? 1.0
                                  : static_cast<double>(recovered) / static_cast<double>(stranded),
                    recoverySeconds);
      curve += curve.empty() ? "" : ",\n";
      curve += row;
    }

    // Fault churn: interleaved arrivals/departures/failures/repairs;
    // the recovery-latency distribution and the leak gate.
    mapping::AdmissionController controller(arch);
    suite::ChurnOptions churnOptions;
    churnOptions.seed = 42;
    churnOptions.events = 600;
    churnOptions.faultChance = 0.08;
    churnOptions.repairChance = 0.25;
    const suite::ChurnResult churn = suite::runChurnTrace(controller, workload, churnOptions);
    if (!churn.pristineAfterDrain) {
      healthy = false;  // fault churn leaked
    }
    std::vector<double> recoveryLatencies;
    for (const suite::ChurnEvent& event : churn.trace) {
      if (event.kind == suite::ChurnEvent::Kind::Fault) {
        recoveryLatencies.push_back(event.seconds);
      }
    }

    char row[2048];
    std::snprintf(
        row, sizeof row,
        "    {\"platform\": \"%s\", \"tiles\": %zu, \"spare_tiles\": %u,\n"
        "      \"survival_curve\": [\n%s\n      ],\n"
        "      \"churn_events\": %zu, \"churn_faults\": %zu, "
        "\"churn_evacuated\": %zu, \"churn_recovered\": %zu,\n"
        "      \"recovery_p50_seconds\": %.6f, \"recovery_p99_seconds\": %.6f, "
        "\"churn_pristine_after_drain\": %s}",
        p.name, arch.tileCount(), p.spareTiles, curve.c_str(), churnOptions.events,
        churn.stats.faultsInjected, churn.stats.evacuated, churn.stats.recovered,
        percentile(recoveryLatencies, 0.50), percentile(recoveryLatencies, 0.99),
        churn.pristineAfterDrain ? "true" : "false");
    rows += rows.empty() ? "" : ",\n";
    rows += row;
  }

  std::printf("{\n");
  std::printf("  \"bench\": \"bench_faults\",\n");
  std::printf(
      "  \"workload\": \"suite mix filled to capacity, k simultaneous tile failures "
      "(survival = recovered/stranded), plus a 600-event fault churn for the "
      "recovery-latency distribution\",\n");
  std::printf("  \"platforms\": [\n%s\n  ],\n", rows.c_str());
  std::printf("  \"healthy\": %s\n", healthy ? "true" : "false");
  std::printf("}\n");
  return healthy ? 0 : 1;
}
