// DSE engine benchmark: sweep >= 100 MJPEG design points twice in the
// same run — once with the serial from-scratch baseline (no shared
// application preparation, every buffer-growth round rebuilds the
// binding-aware model and runs a cold analysis) and once with the
// engine (shared AppAnalysisCache, incremental re-analysis with
// warm-started Howard, worker pool) — and verify the two sweeps'
// throughput rationals are bit-identical. Prints one JSON object to
// stdout; the trajectory at ../BENCH_dse.json records these numbers
// across PRs. Exits non-zero when the sweeps disagree, or when the
// engine's mean per-point latency exceeds 1.5x the committed
// trajectory's latest entry (the perf regression gate — wins recorded
// in BENCH_dse.json cannot silently rot).
#include <cstdio>
#include <thread>

#include "apps/mjpeg/actors.hpp"
#include "apps/mjpeg/testdata.hpp"
#include "mapping/dse.hpp"

using namespace mamps;

int main() {
  const auto calibration = mjpeg::encodeSequence(mjpeg::makeSyntheticSequence(2, 64, 48), {});
  mjpeg::MjpegApp app = mjpeg::buildMjpegApp(mjpeg::calibrateWcets(calibration));
  // Demand a throughput most configurations only reach after several
  // buffer-growth rounds (and single-tile ones never do), so every
  // design point exercises the re-analysis loop the engine accelerates.
  app.model.setThroughputConstraint(Rational(1, 1'250'000));

  std::vector<mapping::DesignPoint> points;
  for (const auto serialization :
       {comm::SerializationMode::OnProcessor, comm::SerializationMode::CommAssist}) {
    for (const auto kind :
         {platform::InterconnectKind::Fsl, platform::InterconnectKind::NocMesh}) {
      for (std::uint32_t tiles = 1; tiles <= 5; ++tiles) {
        for (const std::uint32_t scale : {1u, 2u}) {
          for (const std::uint32_t wires : {8u, 4u, 2u}) {
            mapping::DesignPoint point;
            point.platform.tileCount = tiles;
            point.platform.interconnect = kind;
            point.options.serialization = serialization;
            point.options.initialBufferScale = scale;
            point.options.nocWiresPerConnection = wires;
            point.options.bufferGrowthRounds = 6;
            points.push_back(point);
          }
        }
      }
    }
  }

  // Baseline: serial, from-scratch, no reuse anywhere.
  std::vector<mapping::DesignPoint> baselinePoints = points;
  for (mapping::DesignPoint& point : baselinePoints) {
    point.options.incrementalAnalysis = false;
  }
  mapping::DseOptions serialOptions;
  serialOptions.threads = 1;
  serialOptions.reusePreparation = false;
  const mapping::DseResult baseline =
      mapping::exploreDesignSpace(app.model, baselinePoints, serialOptions);

  // The engine: incremental re-analysis, shared preparation, worker pool.
  const mapping::DseResult engine = mapping::exploreDesignSpace(app.model, points, {});

  bool identical = baseline.points.size() == engine.points.size();
  std::size_t met = 0;
  for (std::size_t i = 0; identical && i < points.size(); ++i) {
    const auto& b = baseline.points[i];
    const auto& e = engine.points[i];
    identical = b.feasible() == e.feasible();
    if (identical && e.feasible()) {
      identical = b.mapping->throughput.status == e.mapping->throughput.status &&
                  b.mapping->throughput.iterationsPerCycle ==
                      e.mapping->throughput.iterationsPerCycle &&
                  b.mapping->meetsConstraint == e.mapping->meetsConstraint &&
                  b.mapping->mapping.localCapacityTokens == e.mapping->mapping.localCapacityTokens &&
                  b.mapping->mapping.srcBufferTokens == e.mapping->mapping.srcBufferTokens;
      met += e.mapping->meetsConstraint ? 1 : 0;
    }
  }

  // Perf regression gate: the committed trajectory's latest
  // engine_mean_point_ms (BENCH_dse.json, PR 10) with 1.5x headroom
  // for host variance. Update the constant when appending an entry.
  constexpr double kCommittedMeanPointMs = 0.95;
  constexpr double kGateFactor = 1.5;
  const double meanPointMs = engine.meanPointSeconds() * 1e3;
  const bool withinBudget = meanPointMs <= kGateFactor * kCommittedMeanPointMs;

  const double speedup =
      engine.totalSeconds > 0.0 ? baseline.totalSeconds / engine.totalSeconds : 0.0;
  std::printf("{\n");
  std::printf("  \"bench\": \"bench_dse\",\n");
  std::printf("  \"workload\": \"MJPEG decoder, constraint 1/1250000, growth budget 6\",\n");
  std::printf("  \"points\": %zu,\n", points.size());
  std::printf("  \"threads\": %u,\n", std::max(1u, std::thread::hardware_concurrency()));
  std::printf("  \"feasible\": %zu,\n", engine.feasibleCount());
  std::printf("  \"meets_constraint\": %zu,\n", met);
  std::printf("  \"baseline_seconds\": %.3f,\n", baseline.totalSeconds);
  std::printf("  \"engine_seconds\": %.3f,\n", engine.totalSeconds);
  std::printf("  \"engine_mean_point_ms\": %.2f,\n", engine.meanPointSeconds() * 1e3);
  std::printf("  \"speedup\": %.2f,\n", speedup);
  std::printf("  \"identical_rationals\": %s,\n", identical ? "true" : "false");
  std::printf("  \"perf_gate_limit_ms\": %.2f,\n", kGateFactor * kCommittedMeanPointMs);
  std::printf("  \"perf_within_budget\": %s\n", withinBudget ? "true" : "false");
  std::printf("}\n");
  return identical && withinBudget ? 0 : 1;
}
