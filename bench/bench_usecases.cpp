// Multi-application co-mapping sweep: every built-in use case (a
// workload of applications sharing ONE platform) is swept through the
// DSE engine's workload design points (both serialization modes),
// exercising mapWorkload's residual-budget flow, the MCR fast path,
// and the parallel multi-application sweep. Prints one JSON object to
// stdout; the trajectory at ../BENCH_usecases.json records these
// numbers across PRs. Exits non-zero when any use case fails to co-map
// every application, any application misses its throughput constraint,
// or a guarantee leaves the MCR fast path.
#include <cstdio>
#include <string>

#include "apps/suite/usecases.hpp"
#include "mapping/dse.hpp"

using namespace mamps;

int main() {
  bool healthy = true;
  std::string rows;
  double totalSeconds = 0.0;
  std::size_t totalPoints = 0;

  for (const suite::UseCase& uc : suite::builtinUseCases()) {
    const suite::UseCaseSweep sweep = suite::useCaseDesignPoints(uc);
    const mapping::DseResult run = mapping::exploreDesignSpace(sweep.apps, sweep.points, {});
    totalSeconds += run.totalSeconds;
    totalPoints += run.points.size();

    std::string apps;
    for (const mapping::DesignPointResult& point : run.points) {
      if (!point.workload || !point.workload->feasible()) {
        healthy = false;  // every workload application must co-map
        continue;
      }
      if (!point.workload->meetsConstraints()) {
        healthy = false;  // and meet its own constraint on the residual
      }
      for (std::size_t i = 0; i < point.workload->apps.size(); ++i) {
        const auto& result = *point.workload->apps[i];
        if (!result.throughput.ok() ||
            result.throughput.engine != analysis::ThroughputEngine::Mcr) {
          healthy = false;
          continue;
        }
        char app[256];
        std::snprintf(app, sizeof app,
                      "      {\"point\": \"%s\", \"app\": \"%s\", \"throughput\": \"%lld/%lld\", "
                      "\"meets_constraint\": %s}",
                      point.label.c_str(), uc.apps[i].name.c_str(),
                      static_cast<long long>(result.throughput.iterationsPerCycle.num()),
                      static_cast<long long>(result.throughput.iterationsPerCycle.den()),
                      result.meetsConstraint ? "true" : "false");
        apps += apps.empty() ? "" : ",\n";
        apps += app;
      }
    }

    char head[256];
    std::snprintf(head, sizeof head,
                  "    {\"name\": \"%s\", \"apps\": %zu, \"points\": %zu, \"feasible\": %zu, "
                  "\"mean_point_ms\": %.2f, \"guarantees\": [\n",
                  uc.name.c_str(), uc.apps.size(), run.points.size(), run.feasibleCount(),
                  run.meanPointSeconds() * 1e3);
    rows += rows.empty() ? "" : ",\n";
    rows += head;
    rows += apps;
    rows += "\n    ]}";
  }

  std::printf("{\n");
  std::printf("  \"bench\": \"bench_usecases\",\n");
  std::printf("  \"workload\": \"use cases co-mapped on one shared platform x {PE, CA}\",\n");
  std::printf("  \"total_points\": %zu,\n", totalPoints);
  std::printf("  \"total_seconds\": %.3f,\n", totalSeconds);
  std::printf("  \"usecases\": [\n%s\n  ],\n", rows.c_str());
  std::printf("  \"healthy\": %s\n", healthy ? "true" : "false");
  std::printf("}\n");
  return healthy ? 0 : 1;
}
