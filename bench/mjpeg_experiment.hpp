// Shared machinery for the MJPEG case-study benches (Figure 6, Table 1,
// Section 6.3): deploys the decoder on the 3-tile platform of the paper
// and produces the three throughput values per input sequence:
//   worst-case analysis : SDF3 bound with calibrated WCETs (guaranteed)
//   expected            : SDF3 with execution times measured on the data
//   measured            : the platform simulator running the real decoder
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "apps/mjpeg/actors.hpp"
#include "apps/mjpeg/testdata.hpp"
#include "mapping/flow.hpp"
#include "platform/arch_template.hpp"
#include "sim/platform_sim.hpp"

namespace mamps::bench {

inline constexpr std::uint32_t kFrameWidth = 64;
inline constexpr std::uint32_t kFrameHeight = 48;
inline constexpr std::uint32_t kFramesPerSequence = 2;

struct MjpegDeployment {
  mjpeg::MjpegApp app;
  platform::Architecture arch;
  mapping::MappingResult result;
};

/// Encode a named sequence ("synthetic" or one of the five test names).
inline std::vector<std::uint8_t> encodeNamedSequence(const std::string& name) {
  const auto frames = name == "synthetic"
                          ? mjpeg::makeSyntheticSequence(kFramesPerSequence, kFrameWidth,
                                                         kFrameHeight)
                          : mjpeg::makeTestSequence(name, kFramesPerSequence, kFrameWidth,
                                                    kFrameHeight);
  // The 10-block sampling exercises the VLD's full fixed rate (no dummy
  // padding), matching the low execution-time variation of the paper's
  // streams and keeping the worst-case bound tight.
  mjpeg::EncoderOptions options;
  options.sampling = mjpeg::Sampling::Yuv410;
  return mjpeg::encodeSequence(frames, options);
}

/// Calibrate WCETs on the synthetic (worst-case) stream and map the
/// decoder onto a 3-tile platform with the given interconnect.
inline MjpegDeployment deployMjpeg(platform::InterconnectKind kind) {
  MjpegDeployment d;
  d.app = mjpeg::buildMjpegApp(
      mjpeg::calibrateWcets(encodeNamedSequence("synthetic"), /*marginPercent=*/1));
  platform::TemplateRequest request;
  request.tileCount = 3;
  request.interconnect = kind;
  d.arch = platform::generateFromTemplate(request);
  auto mapped = mapping::mapApplication(d.app.model, d.arch, {});
  if (!mapped || !mapped->throughput.ok()) {
    throw Error("deployMjpeg: mapping failed");
  }
  d.result = std::move(*mapped);
  return d;
}

struct SequencePoint {
  std::string sequence;
  double worstCase = 0;  ///< MCUs per MHz per second (= iterations/cycle * 1e6)
  double expected = 0;
  double measured = 0;
};

/// Produce one Figure 6 data point for `sequence` on `deployment`.
inline SequencePoint evaluateSequence(const MjpegDeployment& d, const std::string& sequence) {
  SequencePoint point;
  point.sequence = sequence;
  point.worstCase = d.result.throughput.iterationsPerCycle.toDouble() * 1e6;

  const auto stream = encodeNamedSequence(sequence);

  // Expected: SDF3 with the (average) execution times measured on this
  // data set — the long-term average throughput of Section 5 depends on
  // the mean firing times.
  const mjpeg::MjpegWcets measured = mjpeg::measureAverageCosts(stream);
  const auto expected = mapping::analyzeMapping(
      d.app.model, d.arch, d.result.mapping,
      {measured.vld, measured.iqzz, measured.idct, measured.cc, measured.raster});
  point.expected = expected.ok() ? expected.iterationsPerCycle.toDouble() * 1e6 : 0.0;

  // Measured: the platform simulator running the functional decoder.
  sim::PlatformSim simulator(d.app.model, d.arch, d.result.mapping);
  mjpeg::attachMjpegBehaviors(simulator, d.app, stream);
  sim::SimOptions options;
  options.warmupIterations = 8;
  options.measureIterations = 64;
  const sim::SimResult sim = simulator.run(options);
  point.measured = sim.ok() ? sim.iterationsPerCycle() * 1e6 : 0.0;
  return point;
}

/// The full corpus: the synthetic sequence plus the five test sequences.
inline std::vector<std::string> corpus() {
  std::vector<std::string> names{"synthetic"};
  for (const auto& name : mjpeg::testSequenceNames()) {
    names.push_back(name);
  }
  return names;
}

inline void printFigure6Table(const char* title, const std::vector<SequencePoint>& points) {
  std::printf("%s\n", title);
  std::printf("Throughput in MCUs per MHz per second (= MCUs per Mcycle).\n");
  std::printf("The worst-case analysis line is guaranteed by the flow; measured\n");
  std::printf("and expected values must sit on or above it.\n\n");
  std::printf("%-12s %14s %12s %12s %14s\n", "sequence", "worst-case", "expected", "measured",
              "margin meas.");
  bool guaranteed = true;
  for (const SequencePoint& p : points) {
    std::printf("%-12s %14.4f %12.4f %12.4f %13.1f%%\n", p.sequence.c_str(), p.worstCase,
                p.expected, p.measured, 100.0 * (p.measured / p.worstCase - 1.0));
    guaranteed = guaranteed && p.measured >= p.worstCase * (1 - 1e-9) &&
                 p.expected >= p.worstCase * (1 - 1e-9);
  }
  std::printf("\nConservative bound held for every sequence: %s\n",
              guaranteed ? "yes" : "NO (guarantee violated!)");
}

}  // namespace mamps::bench
