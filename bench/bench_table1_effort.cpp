// Table 1: designer effort for creating and mapping the MJPEG decoder.
// The manual steps are reported from the paper (they are human effort);
// the automated steps are *measured* on this implementation of the flow.
// FPGA synthesis (17 min of XPS work) is not reproducible without the
// Xilinx toolchain and is reported from the paper.
#include <chrono>
#include <cstdio>

#include "mamps/generator.hpp"
#include "mapping/dse.hpp"
#include "mjpeg_experiment.hpp"
#include "platform/arch_template.hpp"

int main() {
  using namespace mamps;
  using namespace mamps::bench;
  using Clock = std::chrono::steady_clock;
  const auto seconds = [](Clock::duration d) {
    return std::chrono::duration<double>(d).count();
  };

  // Inputs (prepared outside the timed steps, as in the paper).
  const auto stream = encodeNamedSequence("synthetic");
  const mjpeg::MjpegApp app = mjpeg::buildMjpegApp(mjpeg::calibrateWcets(stream));

  // --- Automated step 1: generating the architecture model --------------
  const auto archStart = Clock::now();
  platform::TemplateRequest request;
  request.tileCount = 3;
  request.interconnect = platform::InterconnectKind::Fsl;
  const platform::Architecture arch = platform::generateFromTemplate(request);
  const double archSeconds = seconds(Clock::now() - archStart);

  // --- Automated step 2: mapping the design (SDF3) ----------------------
  const auto mapStart = Clock::now();
  const auto result = mapping::mapApplication(app.model, arch, {});
  const double mapSeconds = seconds(Clock::now() - mapStart);
  if (!result) {
    std::printf("mapping failed\n");
    return 1;
  }

  // --- Automated step 3: generating the Xilinx project (MAMPS) ----------
  const auto genStart = Clock::now();
  const gen::PlatformProject project = gen::generatePlatform(app.model, arch, result->mapping);
  const double genSeconds = seconds(Clock::now() - genStart);

  std::printf("Table 1 - Designer effort (steps marked 'a' are automated)\n\n");
  std::printf("%-42s %16s %16s\n", "Step", "paper", "this repo");
  std::printf("%-42s %16s %16s\n", "Parallelizing the MJPEG code", "< 3 days", "(manual)");
  std::printf("%-42s %16s %16s\n", "Creating the SDF graph", "5 minutes", "(manual)");
  std::printf("%-42s %16s %16s\n", "Gathering required actor metrics", "1 day", "(manual)");
  std::printf("%-42s %16s %16s\n", "Creating application model", "1 hour", "(manual)");
  std::printf("%-42s %16s %15.4fs\n", "Generating architecture model (a)", "1 second",
              archSeconds);
  std::printf("%-42s %16s %15.4fs\n", "Mapping the design (SDF3) (a)", "1 minute", mapSeconds);
  std::printf("%-42s %16s %15.4fs\n", "Generating Xilinx project (MAMPS) (a)", "16 seconds",
              genSeconds);
  std::printf("%-42s %16s %16s\n", "Synthesis of the system (a)", "17 minutes",
              "(needs XPS)");
  std::printf("%-42s %16s\n", "Total time spent", "~ 4 days");
  std::printf("\nGenerated %zu artifacts; guaranteed throughput %.4f MCUs/MHz/s.\n",
              project.files.size(),
              result->throughput.iterationsPerCycle.toDouble() * 1e6);
  std::printf("All automated steps complete well inside the paper's budgets;\n");
  std::printf("a manual implementation would cost another 2-5 days (Section 6.2).\n");

  // --- The Section 7 use case: the 1-minute mapping step amortized ------
  // over a whole design space. The DSE engine shares the application
  // preparation across points and re-analyzes buffer-growth rounds
  // incrementally, so a sweep costs little more than one mapping.
  std::vector<mapping::DesignPoint> points;
  for (const auto kind :
       {platform::InterconnectKind::Fsl, platform::InterconnectKind::NocMesh}) {
    for (std::uint32_t tiles = 1; tiles <= 5; ++tiles) {
      mapping::DesignPoint point;
      point.platform.tileCount = tiles;
      point.platform.interconnect = kind;
      points.push_back(point);
    }
  }
  const mapping::DseResult sweep = mapping::exploreDesignSpace(app.model, points);
  std::printf("\nDesign-space exploration (Section 7): %zu platform instances in %.2fs\n",
              sweep.points.size(), sweep.totalSeconds);
  std::printf("(%zu feasible, %.1f ms mean per point; see bench_dse / examples/dse_sweep).\n",
              sweep.feasibleCount(), sweep.meanPointSeconds() * 1e3);
  return 0;
}
